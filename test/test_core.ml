(* Tests for the dvp core library: the value algebra, operators, log codec,
   lock table, clocks, the Vm engine, and whole-system behaviour including
   the Section 3 walkthrough, partitions, crashes, and recovery. *)

(* These tests deliberately keep exercising the legacy four-way submission
   surface (submit / submit_read / submit_read_many / submit_retrying) so
   the deprecated wrappers over System.exec stay covered. *)
[@@@alert "-deprecated"]

module Rng = Dvp_util.Rng
open Dvp

let result_testable =
  let pp ppf = function
    | Site.Committed { read_value = None } -> Format.pp_print_string ppf "Committed"
    | Site.Committed { read_value = Some v } -> Format.fprintf ppf "Committed(read=%d)" v
    | Site.Aborted r -> Format.fprintf ppf "Aborted(%s)" (Metrics.abort_reason_label r)
  in
  Alcotest.testable pp ( = )

(* ---------------------------------------------------------------- Value *)

let test_pi_sum () =
  Alcotest.(check int) "pi" 30 (Value.pi [ 2; 3; 10; 15 ]);
  Alcotest.(check int) "pi empty" 0 (Value.pi [])

let test_split_even () =
  Alcotest.(check (list int)) "even" [ 25; 25; 25; 25 ] (Value.split_even 100 ~parts:4);
  Alcotest.(check (list int)) "uneven" [ 3; 3; 2; 2 ] (Value.split_even 10 ~parts:4);
  Alcotest.(check (list int)) "zero" [ 0; 0; 0 ] (Value.split_even 0 ~parts:3)

let test_split_weighted () =
  let parts = Value.split_weighted 100 ~weights:[ 1.0; 1.0; 2.0 ] in
  Alcotest.(check int) "preserves pi" 100 (Value.pi parts);
  (match parts with
  | [ a; b; c ] ->
    Alcotest.(check bool) "heaviest gets most" true (c >= a && c >= b)
  | _ -> Alcotest.fail "expected three parts");
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Value.split_weighted: weights sum to zero") (fun () ->
      ignore (Value.split_weighted 10 ~weights:[ 0.0; 0.0 ]))

let test_split_random () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let v = Rng.int rng 50 in
    let parts = 1 + Rng.int rng 6 in
    let frags = Value.split_random rng v ~parts in
    Alcotest.(check int) "count" parts (List.length frags);
    Alcotest.(check int) "pi preserved" v (Value.pi frags);
    Alcotest.(check bool) "nonneg" true (Value.valid_multiset frags)
  done

let prop_partitionable =
  QCheck.Test.make ~name:"Pi is partitionable under regrouping" ~count:300
    QCheck.(pair (list (int_bound 100)) (list (int_bound 20)))
    (fun (b, cuts) -> Value.law_partitionable b cuts)

let prop_split_pi =
  QCheck.Test.make ~name:"split preserves Pi" ~count:300
    QCheck.(pair (int_bound 10_000) (int_range 1 64))
    (fun (v, parts) -> Value.law_split_preserves_pi v ~parts)

let op_gen =
  QCheck.Gen.(
    map2 (fun b m -> if b then Op.Incr m else Op.Decr m) bool (int_bound 50))

let arbitrary_op = QCheck.make ~print:Op.to_string op_gen

let prop_op_commutes_with_pi =
  QCheck.Test.make ~name:"operators commute with Pi" ~count:300
    QCheck.(pair arbitrary_op (list (int_bound 100)))
    (fun (op, b) -> Value.law_operator_commutes op b)

let prop_ops_commute_pairwise =
  QCheck.Test.make ~name:"operators commute pairwise" ~count:300
    QCheck.(triple arbitrary_op arbitrary_op (int_bound 200))
    (fun (g, h, d) -> Value.law_operators_commute_pairwise g h d)

(* ------------------------------------------------------------------- Op *)

let test_op_apply () =
  Alcotest.(check (option int)) "incr" (Some 15) (Op.apply (Op.Incr 5) ~fragment:10);
  Alcotest.(check (option int)) "decr ok" (Some 5) (Op.apply (Op.Decr 5) ~fragment:10);
  Alcotest.(check (option int)) "decr exact" (Some 0) (Op.apply (Op.Decr 10) ~fragment:10);
  Alcotest.(check (option int)) "decr ineffective" None (Op.apply (Op.Decr 11) ~fragment:10)

let test_op_shortfall () =
  Alcotest.(check int) "no shortfall" 0 (Op.shortfall (Op.Decr 5) ~fragment:10);
  Alcotest.(check int) "shortfall" 3 (Op.shortfall (Op.Decr 13) ~fragment:10);
  Alcotest.(check int) "incr never" 0 (Op.shortfall (Op.Incr 100) ~fragment:0)

let test_op_delta () =
  Alcotest.(check int) "incr delta" 7 (Op.delta (Op.Incr 7));
  Alcotest.(check int) "decr delta" (-7) (Op.delta (Op.Decr 7))

(* ------------------------------------------------------------ Log_event *)

let log_event_gen =
  let open QCheck.Gen in
  let action = map2 (fun i v -> Log_event.Set_fragment { item = i; value = v }) (int_bound 20) (int_bound 1000) in
  let actions = list_size (int_range 0 4) action in
  let ts = map2 (fun c s -> (c, s)) (int_bound 10_000) (int_bound 31) in
  frequency
    [
      ( 3,
        map2
          (fun (dst, seq, item, amount) (reply_to, actions) ->
            Log_event.Vm_create { dst; seq; item; amount; reply_to; actions })
          (quad (int_bound 31) (int_bound 500) (int_bound 20) (int_bound 100))
          (pair (opt ts) actions) );
      ( 3,
        map2
          (fun (peer, seq, item) (amount, new_value) ->
            Log_event.Vm_accept { peer; seq; item; amount; new_value })
          (triple (int_bound 31) (int_bound 500) (int_bound 20))
          (pair (int_bound 100) (int_bound 1000)) );
      (3, map2 (fun txn actions -> Log_event.Txn_commit { txn; actions }) ts actions);
      (1, map (fun txn -> Log_event.Txn_applied { txn }) ts);
      ( 1,
        map2 (fun dst upto -> Log_event.Ack_progress { dst; upto }) (int_bound 31)
          (int_bound 500) );
      ( 1,
        let pair_list = list_size (int_range 0 4) (pair (int_bound 31) (int_bound 500)) in
        let outbox_entry =
          map2
            (fun (dst, seq, item) (amount, rt) -> (dst, seq, item, amount, rt))
            (triple (int_bound 31) (int_bound 500) (int_bound 20))
            (pair (int_bound 100) (opt ts))
        in
        map2
          (fun (fragments, accepted, next_seq) (acked, outbox, max_counter) ->
            Log_event.Checkpoint { fragments; accepted; next_seq; acked; outbox; max_counter })
          (triple pair_list pair_list pair_list)
          (triple pair_list (list_size (int_range 0 3) outbox_entry) (int_bound 10_000)) );
    ]

let prop_log_codec_roundtrip =
  QCheck.Test.make ~name:"log record codec round-trips" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Log_event.pp) log_event_gen)
    (fun record -> Log_event.decode (Log_event.encode record) = Some record)

let test_log_decode_garbage () =
  Alcotest.(check bool) "garbage" true (Log_event.decode "nonsense" = None);
  Alcotest.(check bool) "wrong arity" true (Log_event.decode "T|1" = None);
  Alcotest.(check bool) "bad int" true (Log_event.decode "D|x|1" = None)

(* ------------------------------------------------------------ Lock_table *)

let t1 = (1, 0)

let t2 = (2, 0)

let test_locks_basic () =
  let lt = Lock_table.create () in
  Alcotest.(check bool) "acquire" true (Lock_table.try_acquire lt ~item:1 ~txn:t1);
  Alcotest.(check bool) "reentrant" true (Lock_table.try_acquire lt ~item:1 ~txn:t1);
  Alcotest.(check bool) "conflict" false (Lock_table.try_acquire lt ~item:1 ~txn:t2);
  Lock_table.release lt ~item:1 ~txn:t1;
  Alcotest.(check bool) "after release" true (Lock_table.try_acquire lt ~item:1 ~txn:t2)

let test_locks_atomic_all () =
  let lt = Lock_table.create () in
  Alcotest.(check bool) "t1 takes 2" true (Lock_table.try_acquire_all lt ~items:[ 1; 2 ] ~txn:t1);
  Alcotest.(check bool) "t2 blocked on overlap" false
    (Lock_table.try_acquire_all lt ~items:[ 2; 3 ] ~txn:t2);
  (* All-or-nothing: 3 must not have been taken. *)
  Alcotest.(check bool) "3 still free" false (Lock_table.is_locked lt ~item:3)

let test_locks_release_all () =
  let lt = Lock_table.create () in
  ignore (Lock_table.try_acquire_all lt ~items:[ 1; 2; 3 ] ~txn:t1);
  let freed = Lock_table.release_all lt ~txn:t1 in
  Alcotest.(check (list int)) "all freed" [ 1; 2; 3 ] freed;
  Alcotest.(check (list int)) "nothing locked" [] (Lock_table.locked_items lt)

let test_locks_waiters () =
  let lt = Lock_table.create () in
  let fired = ref [] in
  ignore (Lock_table.try_acquire lt ~item:1 ~txn:t1);
  Lock_table.enqueue_waiter lt ~item:1 (fun () -> fired := "a" :: !fired);
  Lock_table.enqueue_waiter lt ~item:1 (fun () -> fired := "b" :: !fired);
  Alcotest.(check (list string)) "not yet" [] !fired;
  Lock_table.release lt ~item:1 ~txn:t1;
  Alcotest.(check (list string)) "both fired in order" [ "a"; "b" ] (List.rev !fired)

let test_locks_waiter_free_item_runs_now () =
  let lt = Lock_table.create () in
  let fired = ref false in
  Lock_table.enqueue_waiter lt ~item:9 (fun () -> fired := true);
  Alcotest.(check bool) "immediate" true !fired

let test_locks_clear () =
  let lt = Lock_table.create () in
  ignore (Lock_table.try_acquire lt ~item:1 ~txn:t1);
  Lock_table.clear lt;
  Alcotest.(check bool) "cleared" false (Lock_table.is_locked lt ~item:1)

(* ---------------------------------------------------------------- Clock *)

let test_clock_monotone () =
  let c = Ids.Clock.create 3 in
  let a = Ids.Clock.next c in
  let b = Ids.Clock.next c in
  Alcotest.(check bool) "increasing" true (Ids.ts_lt a b);
  Alcotest.(check int) "site in ts" 3 (snd a)

let test_clock_witness () =
  let c = Ids.Clock.create 0 in
  Ids.Clock.witness c (100, 5);
  let t = Ids.Clock.next c in
  Alcotest.(check bool) "past witnessed" true (Ids.ts_lt (100, 5) t)

let test_ts_uniqueness_across_sites () =
  let a = Ids.Clock.next (Ids.Clock.create 0) in
  let b = Ids.Clock.next (Ids.Clock.create 1) in
  Alcotest.(check bool) "distinct" true (Ids.ts_compare a b <> 0)

(* --------------------------------------------------------------- Config *)

let test_grant_policies () =
  let check name policy requested fragment expect =
    Alcotest.(check int) name expect (Config.grant_amount policy ~requested ~fragment)
  in
  check "requested capped" Config.Grant_requested 10 6 6;
  check "requested exact" Config.Grant_requested 5 10 5;
  check "all" Config.Grant_all 1 10 10;
  check "double" Config.Grant_double 3 10 6;
  check "double capped" Config.Grant_double 8 10 10;
  check "half-keep" Config.Grant_half_keep 10 10 5;
  check "half-keep small ask" Config.Grant_half_keep 2 10 2

let test_request_targets () =
  let rng = Rng.create 1 in
  let targets p = Config.request_targets p ~rng ~self:0 ~n:4 ~shortfall:10 in
  (match targets Config.Ask_all_full with
  | l ->
    Alcotest.(check int) "three targets" 3 (List.length l);
    List.iter (fun (s, a) ->
        Alcotest.(check bool) "not self" true (s <> 0);
        Alcotest.(check int) "full" 10 a) l);
  (match targets Config.Ask_all_split with
  | l -> List.iter (fun (_, a) -> Alcotest.(check int) "ceil(10/3)" 4 a) l);
  (match targets Config.Ask_one_random with
  | [ (s, a) ] ->
    Alcotest.(check bool) "valid" true (s >= 1 && s <= 3);
    Alcotest.(check int) "full" 10 a
  | _ -> Alcotest.fail "expected one target");
  Alcotest.(check int) "ask-2" 2 (List.length (targets (Config.Ask_k 2)));
  Alcotest.(check (list (pair int int))) "single site: none"
    []
    (Config.request_targets Config.Ask_all_full ~rng ~self:0 ~n:1 ~shortfall:5)

(* -------------------------------------------------------------- Metrics *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.txn_committed m ~latency:0.1;
  Metrics.txn_committed m ~latency:0.3;
  Metrics.txn_aborted m ~reason:Metrics.Timeout ~latency:0.5;
  Metrics.txn_aborted m ~reason:Metrics.Timeout ~latency:0.5;
  Metrics.txn_aborted m ~reason:Metrics.Lock_busy ~latency:0.0;
  Alcotest.(check int) "committed" 2 (Metrics.committed m);
  Alcotest.(check int) "aborted" 3 (Metrics.aborted m);
  Alcotest.(check int) "submitted" 5 (Metrics.submitted m);
  Alcotest.(check int) "by timeout" 2 (Metrics.aborted_by m Metrics.Timeout);
  Alcotest.(check int) "by lock-busy" 1 (Metrics.aborted_by m Metrics.Lock_busy);
  Alcotest.(check int) "by crash" 0 (Metrics.aborted_by m Metrics.Crashed);
  Alcotest.(check (float 1e-9)) "ratio" 0.4 (Metrics.commit_ratio m)

let test_metrics_merge_reasons () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.txn_aborted a ~reason:Metrics.Timeout ~latency:0.0;
  Metrics.txn_aborted b ~reason:Metrics.Timeout ~latency:0.0;
  Metrics.txn_aborted b ~reason:Metrics.Deadlock ~latency:0.0;
  Metrics.lock_held a 0.2;
  Metrics.lock_held b 0.7;
  Metrics.blocked_episode a 1.5;
  let m = Metrics.merge a b in
  Alcotest.(check int) "reasons merged" 2 (Metrics.aborted_by m Metrics.Timeout);
  Alcotest.(check int) "other reason kept" 1 (Metrics.aborted_by m Metrics.Deadlock);
  Alcotest.(check (float 1e-9)) "max lock hold" 0.7 (Metrics.max_lock_hold m);
  Alcotest.(check (float 1e-9)) "max blocked" 1.5 (Metrics.max_blocked m)

let test_metrics_per_commit_ratios () =
  let m = Metrics.create () in
  Metrics.add_messages m 30;
  Alcotest.(check bool) "nan with no commits" true (Float.is_nan (Metrics.messages_per_commit m));
  Metrics.txn_committed m ~latency:0.0;
  Metrics.txn_committed m ~latency:0.0;
  Alcotest.(check (float 1e-9)) "msgs per commit" 15.0 (Metrics.messages_per_commit m);
  Alcotest.(check bool) "summary rows non-empty" true (Metrics.summary_rows m <> [])

(* --------------------------------------------------------------- System *)

let quiet _ = ()

let mk_system ?(seed = 11) ?(config = Config.default) ?link ?(n = 4) ?(items = [ (0, 100) ])
    () =
  let sys = System.create ~seed ~config ?link ~n () in
  List.iter (fun (item, total) -> System.add_item sys ~item ~total ()) items;
  sys

(* The deleted submit* wrappers, reconstructed locally on top of
   System.exec: these tests assert on Site.txn_result shapes. *)
let submit sys ~site ~ops ~on_done =
  System.exec sys (Txn.write ~site ops) ~on_done:(fun o -> on_done (Txn.to_result o))

let submit_read sys ~site ~item ~on_done =
  System.exec sys (Txn.read ~site item) ~on_done:(fun o -> on_done (Txn.to_result o))

let submit_read_many sys ~site ~items ~on_done =
  System.exec sys (Txn.snapshot ~site items) ~on_done:(fun o -> on_done (Txn.to_reads o))

let submit_retrying sys ~site ~ops ~retries ~backoff ~on_done () =
  System.exec sys
    (Txn.with_retry ~retries ~backoff (Txn.write ~site ops))
    ~on_done:(fun o -> on_done (Txn.to_result o))

let test_local_commit_no_messages () =
  let sys = mk_system () in
  let result = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 5) ] ~on_done:(fun r -> result := Some r);
  (* 25 locally available: commits synchronously without any network use. *)
  Alcotest.(check (option result_testable)) "committed"
    (Some (Site.Committed { read_value = None }))
    !result;
  Alcotest.(check int) "fragment reduced" 20 (Site.fragment (System.site sys 0) ~item:0);
  Alcotest.(check int) "no messages" 0 (Dvp_net.Network.stats (System.network sys)).sent

let test_write_only_commit () =
  let sys = mk_system () in
  let result = ref None in
  submit sys ~site:2 ~ops:[ (0, Op.Incr 7) ] ~on_done:(fun r -> result := Some r);
  Alcotest.(check (option result_testable)) "committed"
    (Some (Site.Committed { read_value = None }))
    !result;
  Alcotest.(check int) "fragment grew" 32 (Site.fragment (System.site sys 2) ~item:0)

let test_shortfall_via_vm () =
  let sys = mk_system () in
  let result = ref None in
  (* Site 1 holds 25; ask for 40: shortfall 15 gathered from peers. *)
  submit sys ~site:1 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun r -> result := Some r);
  Alcotest.(check (option result_testable)) "pending" None !result;
  System.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "committed"
    (Some (Site.Committed { read_value = None }))
    !result;
  Alcotest.(check int) "aggregate reduced" 60 (System.total_at_sites sys ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_insufficient_times_out () =
  let sys = mk_system () in
  let result = ref None in
  (* More than the whole system holds. *)
  submit sys ~site:0 ~ops:[ (0, Op.Decr 150) ] ~on_done:(fun r -> result := Some r);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "timeout abort"
    (Some (Site.Aborted Metrics.Timeout))
    !result;
  Alcotest.(check bool) "conserved after abort" true (System.conserved sys ~item:0);
  Alcotest.(check int) "aggregate unchanged" 100 (System.total_at_sites sys ~item:0)

let test_single_site_system () =
  let sys = mk_system ~n:1 ~items:[ (0, 10) ] () in
  let r1 = ref None and r2 = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 4) ] ~on_done:(fun r -> r1 := Some r);
  submit sys ~site:0 ~ops:[ (0, Op.Decr 20) ] ~on_done:(fun r -> r2 := Some r);
  System.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "local ok"
    (Some (Site.Committed { read_value = None }))
    !r1;
  (* Nobody to ask: immediate abort rather than a pointless timeout. *)
  Alcotest.(check (option result_testable)) "impossible aborts"
    (Some (Site.Aborted Metrics.Timeout))
    !r2

let test_section3_walkthrough () =
  (* The airline example of Section 3, scripted: W,X,Y,Z = sites 0-3, flight
     A = item 0 with N = 100 split 25 each. *)
  let sys = mk_system ~seed:5 () in
  let commit_ok site m =
    let r = ref None in
    submit sys ~site ~ops:[ (0, Op.Decr m) ] ~on_done:(fun x -> r := Some x);
    System.run_until sys (System.now sys +. 2.0);
    Alcotest.(check (option result_testable))
      (Printf.sprintf "site %d reserves %d" site m)
      (Some (Site.Committed { read_value = None }))
      !r
  in
  (* Customers at W reserve 3, 4 and 5 seats: N_W goes 25 -> 22 -> 18 -> 13. *)
  commit_ok 0 3;
  Alcotest.(check int) "N_W=22" 22 (Site.fragment (System.site sys 0) ~item:0);
  commit_ok 0 4;
  Alcotest.(check int) "N_W=18" 18 (Site.fragment (System.site sys 0) ~item:0);
  commit_ok 0 5;
  Alcotest.(check int) "N_W=13" 13 (Site.fragment (System.site sys 0) ~item:0);
  (* Drive the fragments to the paper's state N_W=2 N_X=3 N_Y=10 N_Z=15 by
     local reservations. *)
  commit_ok 0 11;
  commit_ok 1 22;
  commit_ok 2 15;
  commit_ok 3 10;
  let frags = System.fragments sys ~item:0 in
  Alcotest.(check (array int)) "paper state" [| 2; 3; 10; 15 |] frags;
  Alcotest.(check int) "N=30" 30 (System.total_at_sites sys ~item:0);
  (* A customer requiring 5 seats arrives at site X (fragment 3): requests
     bring at least 2 more seats; the reservation succeeds. *)
  commit_ok 1 5;
  Alcotest.(check int) "N=25 after" 25 (System.total_at_sites sys ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_partition_local_service_continues () =
  let sys = mk_system ~seed:21 () in
  System.partition sys [ [ 0; 1 ]; [ 2; 3 ] ];
  let r = ref None in
  (* Local capacity suffices: partition is invisible. *)
  submit sys ~site:2 ~ops:[ (0, Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "minority still serves"
    (Some (Site.Committed { read_value = None }))
    !r

let test_partition_remote_need_times_out () =
  let sys = mk_system ~seed:22 () in
  System.partition sys [ [ 0 ]; [ 1; 2; 3 ] ];
  let r = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "aborts, does not block"
    (Some (Site.Aborted Metrics.Timeout))
    !r;
  (* Non-blocking: the whole episode is bounded by the timeout. *)
  let m = System.metrics sys in
  Alcotest.(check bool) "lock hold bounded" true
    (Metrics.max_lock_hold m <= Config.default.Config.txn_timeout +. 0.001);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_partition_heal_then_succeed () =
  let sys = mk_system ~seed:23 () in
  System.partition sys [ [ 0 ]; [ 1; 2; 3 ] ];
  let r1 = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r1 := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "first aborts" (Some (Site.Aborted Metrics.Timeout)) !r1;
  System.heal sys;
  let r2 = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r2 := Some x);
  System.run_until sys 10.0;
  Alcotest.(check (option result_testable)) "after heal succeeds"
    (Some (Site.Committed { read_value = None }))
    !r2;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_drain_read_full_value () =
  let sys = mk_system ~seed:31 () in
  (* Spend a bit so the total is not the initial. *)
  let r0 = ref None in
  submit sys ~site:3 ~ops:[ (0, Op.Decr 5) ] ~on_done:(fun x -> r0 := Some x);
  System.run_until sys 1.0;
  let r = ref None in
  submit_read sys ~site:1 ~item:0 ~on_done:(fun x -> r := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "read sees 95"
    (Some (Site.Committed { read_value = Some 95 }))
    !r;
  (* Everything is now at site 1. *)
  Alcotest.(check int) "drained to reader" 95 (Site.fragment (System.site sys 1) ~item:0);
  Alcotest.(check (array int)) "others empty" [| 0; 95; 0; 0 |] (System.fragments sys ~item:0)

let test_drain_read_during_partition_aborts () =
  let sys = mk_system ~seed:32 () in
  System.partition sys [ [ 0; 1 ]; [ 2; 3 ] ];
  let r = ref None in
  submit_read sys ~site:0 ~item:0 ~on_done:(fun x -> r := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "read aborts" (Some (Site.Aborted Metrics.Timeout)) !r;
  Alcotest.(check bool) "conserved (drained values redistribute)" true
    (System.conserved sys ~item:0)

let test_vm_survives_loss_and_duplication () =
  let link = { Dvp_net.Linkstate.default with loss_prob = 0.3; dup_prob = 0.2 } in
  let sys = mk_system ~seed:33 ~link () in
  let commits = ref 0 and results = ref 0 in
  for i = 0 to 19 do
    submit sys ~site:(i mod 4)
      ~ops:[ (0, Op.Decr 4) ]
      ~on_done:(fun x ->
        incr results;
        match x with Site.Committed _ -> incr commits | Site.Aborted _ -> ())
  done;
  System.run_until sys 30.0;
  Alcotest.(check int) "all resolved" 20 !results;
  Alcotest.(check bool) "most commit" true (!commits >= 15);
  Alcotest.(check bool) "conserved under loss+dup" true (System.conserved sys ~item:0);
  Alcotest.(check int) "aggregate exact" (100 - (4 * !commits))
    (System.total_at_sites sys ~item:0 + System.in_flight sys ~item:0)

let test_crash_aborts_live_txns () =
  let sys = mk_system ~seed:34 () in
  let r = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r := Some x);
  (* Crash before any Vm can arrive. *)
  System.crash_site sys 0;
  Alcotest.(check (option result_testable)) "crashed abort" (Some (Site.Aborted Metrics.Crashed)) !r;
  System.run_until sys 3.0;
  System.recover_site sys 0;
  System.run_until sys 6.0;
  Alcotest.(check bool) "conserved across crash" true (System.conserved sys ~item:0)

let test_recovery_rebuilds_database () =
  let sys = mk_system ~seed:35 () in
  let ok = ref 0 in
  for _ = 1 to 5 do
    submit sys ~site:0 ~ops:[ (0, Op.Decr 3) ]
      ~on_done:(fun x -> match x with Site.Committed _ -> incr ok | _ -> ())
  done;
  System.run_until sys 1.0;
  Alcotest.(check int) "five commits" 5 !ok;
  let before = Site.fragment (System.site sys 0) ~item:0 in
  System.crash_site sys 0;
  System.run_until sys 2.0;
  System.recover_site sys 0;
  Alcotest.(check int) "fragment rebuilt" before (Site.fragment (System.site sys 0) ~item:0)

let test_recovery_is_independent () =
  (* Recovery sends zero messages: message counters do not move while the
     sole event is a recovery. *)
  let sys = mk_system ~seed:36 () in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 30) ] ~on_done:quiet;
  System.run_until sys 2.0;
  System.crash_site sys 1;
  System.run_until sys 4.0;
  let sent_before = (Dvp_net.Network.stats (System.network sys)).sent in
  System.recover_site sys 1;
  let sent_after = (Dvp_net.Network.stats (System.network sys)).sent in
  Alcotest.(check int) "no recovery traffic" sent_before sent_after;
  let m = System.metrics sys in
  Alcotest.(check int) "one recovery, zero messages" 0 (Metrics.recovery_messages m);
  Alcotest.(check int) "recovery recorded" 1 (Metrics.recovery_count m)

let test_vm_outstanding_survives_receiver_crash () =
  (* Create a transfer towards a crashed site; the Vm must be delivered after
     the site recovers — never lost. *)
  (* Ask-all-full so the two live peers can each cover the shortfall alone. *)
  let config = { Config.default with Config.request_policy = Config.Ask_all_full } in
  let sys = mk_system ~seed:37 ~config () in
  System.crash_site sys 1;
  (* Site 1's fragment (stable 25) is out of reach; sites 2,3 cover the
     shortfall of 5 with 5 each (over-collection is just redistribution). *)
  let r = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 30) ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "commits without site 1"
    (Some (Site.Committed { read_value = None }))
    !r;
  Alcotest.(check bool) "conserved with crashed site" true (System.conserved sys ~item:0);
  System.recover_site sys 1;
  System.run_until sys 6.0;
  Alcotest.(check bool) "conserved after recovery" true (System.conserved sys ~item:0)

let test_conc2_basic_commit () =
  let config = { Config.default with Config.cc = Config.Conc2 } in
  let sys = mk_system ~seed:39 ~config () in
  let r = ref None in
  submit sys ~site:1 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "conc2 commits"
    (Some (Site.Committed { read_value = None }))
    !r;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_conc2_lock_conflict_waits_not_aborts () =
  let config = { Config.default with Config.cc = Config.Conc2 } in
  let sys = mk_system ~seed:40 ~config () in
  let r1 = ref None and r2 = ref None in
  (* First txn needs remote help -> holds the lock while waiting. *)
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r1 := Some x);
  (* Second local txn arrives immediately: under Conc2 it waits and then
     commits; under Conc1 it would abort Lock_busy. *)
  submit sys ~site:0 ~ops:[ (0, Op.Decr 2) ] ~on_done:(fun x -> r2 := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "first commits"
    (Some (Site.Committed { read_value = None }))
    !r1;
  Alcotest.(check (option result_testable)) "second waited then committed"
    (Some (Site.Committed { read_value = None }))
    !r2;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_conc1_lock_conflict_aborts () =
  let sys = mk_system ~seed:41 () in
  let r1 = ref None and r2 = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r1 := Some x);
  submit sys ~site:0 ~ops:[ (0, Op.Decr 2) ] ~on_done:(fun x -> r2 := Some x);
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "second aborts busy"
    (Some (Site.Aborted Metrics.Lock_busy))
    !r2;
  Alcotest.(check (option result_testable)) "first commits"
    (Some (Site.Committed { read_value = None }))
    !r1

let test_multi_item_transfer () =
  (* Change a reservation from flight A (item 0) to flight B (item 1):
     Decr on 0 and Incr on 1 in one transaction. *)
  let sys = mk_system ~seed:42 ~items:[ (0, 100); (1, 40) ] () in
  let r = ref None in
  submit sys ~site:2
    ~ops:[ (0, Op.Incr 2); (1, Op.Decr 2) ]
    ~on_done:(fun x -> r := Some x);
  System.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "transfer commits"
    (Some (Site.Committed { read_value = None }))
    !r;
  Alcotest.(check int) "A grew" 102 (System.expected_total sys ~item:0);
  Alcotest.(check int) "B shrank" 38 (System.expected_total sys ~item:1);
  Alcotest.(check bool) "both conserved" true (System.conserved_all sys)

let test_no_overselling_under_stress () =
  (* Safety: with N initial seats and concurrent demand far exceeding N, the
     number of committed seat-decrements never exceeds N. *)
  let sys = mk_system ~seed:43 ~items:[ (0, 50) ] () in
  let sold = ref 0 in
  for i = 0 to 99 do
    submit sys ~site:(i mod 4)
      ~ops:[ (0, Op.Decr 3) ]
      ~on_done:(fun x -> match x with Site.Committed _ -> sold := !sold + 3 | _ -> ())
  done;
  System.run_until sys 30.0;
  Alcotest.(check bool) "no overselling" true (!sold <= 50);
  Alcotest.(check int) "books balance" (50 - !sold) (System.total_at_sites sys ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_all_sites_fail_one_recovers () =
  (* Section 7: "even if all sites fail and subsequently one site recovers,
     we have the case that it can begin doing some useful work". *)
  let sys = mk_system ~seed:67 () in
  submit sys ~site:2 ~ops:[ (0, Op.Decr 5) ] ~on_done:quiet;
  System.run_until sys 1.0;
  for i = 0 to 3 do
    System.crash_site sys i
  done;
  System.run_until sys 2.0;
  System.recover_site sys 2;
  let r = ref None in
  (* A write-only transaction needs nobody else. *)
  submit sys ~site:2 ~ops:[ (0, Op.Incr 3) ] ~on_done:(fun x -> r := Some x);
  Alcotest.(check (option result_testable)) "useful work alone"
    (Some (Site.Committed { read_value = None }))
    !r;
  (* And a local-capacity decrement works too. *)
  let r2 = ref None in
  submit sys ~site:2 ~ops:[ (0, Op.Decr 2) ] ~on_done:(fun x -> r2 := Some x);
  Alcotest.(check (option result_testable)) "local decrement alone"
    (Some (Site.Committed { read_value = None }))
    !r2;
  (* Bring the others back: global books still balance. *)
  for i = 0 to 3 do
    if not (System.site_up sys i) then System.recover_site sys i
  done;
  System.run_until sys 10.0;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_codec_roundtrips_real_logs () =
  (* Serialise an actual site log (including Vm records and a checkpoint)
     through the textual codec and back. *)
  let sys = mk_system ~seed:66 () in
  submit sys ~site:1 ~ops:[ (0, Op.Decr 40) ] ~on_done:quiet;
  System.run_until sys 2.0;
  System.checkpoint_all sys;
  submit sys ~site:1 ~ops:[ (0, Op.Decr 3) ] ~on_done:quiet;
  System.run_until sys 3.0;
  for i = 0 to 3 do
    let records = Dvp_storage.Wal.records (Site.wal (System.site sys i)) in
    Alcotest.(check bool)
      (Printf.sprintf "site %d log has content" i)
      true (records <> []);
    List.iter
      (fun r ->
        Alcotest.(check bool) "round-trips" true
          (Log_event.decode (Log_event.encode r) = Some r))
      records
  done

let test_checkpoint_shrinks_log_and_recovers () =
  let sys = mk_system ~seed:61 () in
  for _ = 1 to 30 do
    submit sys ~site:0 ~ops:[ (0, Op.Decr 1) ] ~on_done:quiet
  done;
  System.run_until sys 1.0;
  let before = System.stable_log_length sys in
  System.checkpoint_all sys;
  let after = System.stable_log_length sys in
  Alcotest.(check bool) "log shrank" true (after < before);
  Alcotest.(check bool) "checkpoint is tiny" true (after <= 4);
  (* Post-checkpoint traffic, then crash+recover: the snapshot plus the tail
     must rebuild the same fragment. *)
  submit sys ~site:0 ~ops:[ (0, Op.Decr 2) ] ~on_done:quiet;
  System.run_until sys 2.0;
  let frag = Site.fragment (System.site sys 0) ~item:0 in
  System.crash_site sys 0;
  System.run_until sys 3.0;
  System.recover_site sys 0;
  Alcotest.(check int) "fragment rebuilt from snapshot+tail" frag
    (Site.fragment (System.site sys 0) ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_checkpoint_preserves_outstanding_vm () =
  (* Checkpoint a sender while one of its Vm is still unacknowledged (the
     receiver is down): the value must survive truncation and arrive. *)
  let config = { Config.default with Config.request_policy = Config.Ask_all_full } in
  let sys = mk_system ~seed:62 ~config () in
  System.crash_site sys 1;
  (* Honoring sites create Vm to site 0; site 1's response never comes. *)
  submit sys ~site:0 ~ops:[ (0, Op.Decr 30) ] ~on_done:quiet;
  System.run_until sys 1.0;
  (* Send value toward the dead site so some Vm stay outstanding: a drain
     from site 1 is impossible, so instead create outbound Vm by asking from
     site 1's neighbours...  simpler: checkpoint everyone now (acks between
     live sites may be pending) and verify conservation end to end. *)
  System.checkpoint_all sys;
  System.run_until sys 2.0;
  System.recover_site sys 1;
  System.run_until sys 5.0;
  Alcotest.(check bool) "conserved across checkpoint+crash" true
    (System.conserved sys ~item:0)

let test_periodic_checkpoints_bound_log () =
  let sys = mk_system ~seed:63 () in
  System.start_periodic_checkpoints sys ~every:0.5;
  for i = 1 to 200 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(0.04 *. float_of_int i)
         (fun () ->
           submit sys ~site:(i mod 4) ~ops:[ (0, Op.Decr 1) ] ~on_done:quiet))
  done;
  System.run_until sys 10.0;
  (* 200 committed txns would leave >200 records; periodic checkpoints keep
     the tail short. *)
  Alcotest.(check bool) "log stays bounded" true (System.stable_log_length sys < 60);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_proactive_redistribution_prepositions_value () =
  (* With quotas concentrated at site 0 and repeated demand at site 1, the
     proactive daemon starts shipping surplus to site 1 so later
     transactions commit locally. *)
  let config =
    {
      Config.default with
      Config.request_policy = Config.Ask_all_full;
      Config.proactive =
        Some { Config.default_proactive with Config.min_surplus = 100; every = 0.2 };
    }
  in
  let sys = System.create ~config ~seed:64 ~n:4 () in
  System.add_item sys ~item:0 ~total:4000 ~split:(`Explicit [ 3940; 20; 20; 20 ]) ();
  (* Burst of demand at site 1. *)
  for i = 1 to 20 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(0.1 *. float_of_int i)
         (fun () ->
           submit sys ~site:1 ~ops:[ (0, Op.Decr 10) ] ~on_done:quiet))
  done;
  System.run_until sys 5.0;
  Alcotest.(check bool) "site 1 accumulated a working quota" true
    (Site.fragment (System.site sys 1) ~item:0 > 50);
  Alcotest.(check bool) "conserved under proactive sharing" true
    (System.conserved sys ~item:0)

let test_proactive_off_by_default () =
  let sys = System.create ~seed:65 ~n:4 () in
  System.add_item sys ~item:0 ~total:4000 ~split:(`Explicit [ 3940; 20; 20; 20 ]) ();
  submit sys ~site:1 ~ops:[ (0, Op.Decr 10) ] ~on_done:quiet;
  System.run_until sys 3.0;
  (* Reactive only: site 1 received what it asked for, roughly; no daemon
     keeps topping it up. *)
  Alcotest.(check bool) "no runaway accumulation" true
    (Site.fragment (System.site sys 1) ~item:0 < 100)

let test_submit_retrying_succeeds_after_conflicts () =
  (* Under Conc1 the second transaction aborts Lock_busy at first; with
     retries it eventually commits. *)
  let sys = mk_system ~seed:71 () in
  let r1 = ref None and r2 = ref None in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ] ~on_done:(fun x -> r1 := Some x);
  submit_retrying sys ~site:0 ~ops:[ (0, Op.Decr 2) ] ~retries:5 ~backoff:0.1
    ~on_done:(fun x -> r2 := Some x)
    ();
  System.run_until sys 5.0;
  Alcotest.(check (option result_testable)) "first commits"
    (Some (Site.Committed { read_value = None }))
    !r1;
  Alcotest.(check (option result_testable)) "retried one commits too"
    (Some (Site.Committed { read_value = None }))
    !r2;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_submit_retrying_gives_up () =
  let sys = mk_system ~seed:72 () in
  let r = ref None and calls = ref 0 in
  (* Impossible demand: every attempt times out; on_done fires exactly once. *)
  submit_retrying sys ~site:0 ~ops:[ (0, Op.Decr 500) ] ~retries:2 ~backoff:0.05
    ~on_done:(fun x ->
      incr calls;
      r := Some x)
    ();
  System.run_until sys 10.0;
  Alcotest.(check (option result_testable)) "finally aborted"
    (Some (Site.Aborted Metrics.Timeout))
    !r;
  Alcotest.(check int) "exactly one callback" 1 !calls

(* Log-surgery recovery tests: construct the exact stable-log states the
   7-step protocol can crash into, then check recovery repairs them. *)

let test_recovery_redoes_committed_unapplied () =
  (* Crash between step 5 (commit record forced) and step 6 (database
     updated): recovery must redo the change. *)
  let sys = mk_system ~seed:73 () in
  let site = System.site sys 0 in
  (* Forge the commit record directly, as if the crash hit before apply. *)
  Dvp_storage.Wal.append (Site.wal site)
    (Log_event.Txn_commit
       { txn = (99, 0); actions = [ Log_event.Set_fragment { item = 0; value = 11 } ] });
  System.crash_site sys 0;
  System.recover_site sys 0;
  Alcotest.(check int) "redo applied" 11 (Site.fragment site ~item:0);
  let m = Site.metrics site in
  Alcotest.(check bool) "counted as redo" true (Metrics.recovery_redos m >= 1)

let test_recovery_applied_marker_bounds_redo () =
  (* With the applied marker forced too, the same commit is not counted as
     needing redo (though replay still reproduces the value). *)
  let sys = mk_system ~seed:74 () in
  let site = System.site sys 0 in
  Dvp_storage.Wal.append (Site.wal site)
    (Log_event.Txn_commit
       { txn = (99, 0); actions = [ Log_event.Set_fragment { item = 0; value = 11 } ] });
  Dvp_storage.Wal.append (Site.wal site) (Log_event.Txn_applied { txn = (99, 0) });
  System.crash_site sys 0;
  System.recover_site sys 0;
  Alcotest.(check int) "value reproduced" 11 (Site.fragment site ~item:0);
  Alcotest.(check int) "no redo counted" 0 (Metrics.recovery_redos (Site.metrics site))

let test_recovery_idempotent_double_replay () =
  (* Recovering twice (crash during recovery) must give the same state. *)
  let sys = mk_system ~seed:75 () in
  for _ = 1 to 10 do
    submit sys ~site:2 ~ops:[ (0, Op.Decr 2) ] ~on_done:quiet
  done;
  System.run_until sys 1.0;
  let before = Site.fragment (System.site sys 2) ~item:0 in
  System.crash_site sys 2;
  System.recover_site sys 2;
  System.crash_site sys 2;
  System.recover_site sys 2;
  Alcotest.(check int) "same after double replay" before
    (Site.fragment (System.site sys 2) ~item:0)

(* Property: a drain read that runs with no concurrent updates returns
   exactly the committed aggregate.  (During concurrent updates a read is
   serializable but need not equal the aggregate at its completion instant:
   an update can commit at a site after that site shipped its fragment.) *)
let prop_drain_read_consistent =
  QCheck.Test.make ~name:"quiesced drain reads return the committed aggregate" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 3 in
      let sys = System.create ~seed ~n () in
      System.add_item sys ~item:0 ~total:(50 * n) ();
      let ok = ref true in
      (* Random updates during [0, 8); reads once the system is quiet. *)
      for _ = 0 to 20 do
        let at = Rng.float rng 8.0 in
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
               let s = Rng.int rng n in
               let m = 1 + Rng.int rng 8 in
               let op = if Rng.bool rng then Op.Decr m else Op.Incr m in
               submit sys ~site:s ~ops:[ (0, op) ] ~on_done:quiet))
      done;
      for i = 0 to 2 do
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys)
             ~at:(12.0 +. (2.0 *. float_of_int i))
             (fun () ->
               let s = Rng.int rng n in
               submit_read sys ~site:s ~item:0 ~on_done:(fun r ->
                   match r with
                   | Site.Committed { read_value = Some v } ->
                     if v <> System.expected_total sys ~item:0 then ok := false
                   | Site.Committed { read_value = None } -> ok := false
                   | Site.Aborted _ -> ())))
      done;
      System.run_until sys 25.0;
      !ok && System.conserved sys ~item:0)

let test_request_retries_survive_lossy_requests () =
  (* Requests are unlogged and unacknowledged; on a very lossy network a
     one-shot transaction usually times out, while Section 5's "re-tried a
     few more times" variation succeeds. *)
  let link = Dvp_net.Linkstate.lossy 0.6 in
  let attempt ~request_retries seed =
    let config =
      {
        Config.default with
        Config.request_policy = Config.Ask_all_full;
        Config.request_retries;
      }
    in
    let sys = System.create ~config ~link ~seed ~n:4 () in
    System.add_item sys ~item:0 ~total:100 ();
    let ok = ref 0 in
    submit sys ~site:0 ~ops:[ (0, Op.Decr 40) ]
      ~on_done:(fun r -> match r with Site.Committed _ -> incr ok | _ -> ());
    System.run_until sys 5.0;
    !ok
  in
  let successes retries =
    let n = ref 0 in
    for seed = 0 to 29 do
      n := !n + attempt ~request_retries:retries seed
    done;
    !n
  in
  let one_shot = successes 0 and retried = successes 4 in
  Alcotest.(check bool)
    (Printf.sprintf "retried requests beat one-shot (%d > %d)" retried one_shot)
    true
    (retried > one_shot + 5)

(* Piggybacked / delayed acknowledgements (Section 4.2). *)

let ping_pong_messages ~ack_delay =
  let config =
    {
      Config.default with
      Config.request_policy = Config.Ask_all_full;
      Config.transport = Config.Transport.v ~ack_delay ();
    }
  in
  let sys = System.create ~config ~seed:85 ~n:2 () in
  (* Two items, each concentrated at one site, pulled from the other on a
     stagger that puts reverse data inside the ack window. *)
  System.add_item sys ~item:0 ~total:10_000 ~split:(`Explicit [ 10_000; 0 ]) ();
  System.add_item sys ~item:1 ~total:10_000 ~split:(`Explicit [ 0; 10_000 ]) ();
  let ok = ref 0 in
  for i = 0 to 19 do
    let base = 0.4 *. float_of_int i in
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:base (fun () ->
           submit sys ~site:1 ~ops:[ (0, Op.Decr 50) ] ~on_done:(fun r ->
               match r with Site.Committed _ -> incr ok | Site.Aborted _ -> ())));
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:(base +. 0.05) (fun () ->
           submit sys ~site:0 ~ops:[ (1, Op.Decr 50) ] ~on_done:(fun r ->
               match r with Site.Committed _ -> incr ok | Site.Aborted _ -> ())));
  done;
  System.run_until sys 20.0;
  Alcotest.(check bool) "most pulls commit" true (!ok >= 30);
  Alcotest.(check bool) "conserved" true (System.conserved_all sys);
  (Dvp_net.Network.stats (System.network sys)).Dvp_net.Network.sent

let test_delayed_acks_reduce_messages () =
  let immediate = ping_pong_messages ~ack_delay:0.0 in
  let delayed = ping_pong_messages ~ack_delay:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "fewer messages with piggybacking (%d < %d)" delayed immediate)
    true (delayed < immediate)

let test_delayed_acks_still_settle () =
  let config = { Config.default with Config.transport = Config.Transport.v ~ack_delay:0.05 () } in
  let sys = mk_system ~seed:86 ~config () in
  submit sys ~site:1 ~ops:[ (0, Op.Decr 40) ] ~on_done:quiet;
  System.run_until sys 5.0;
  (* Everything acknowledged: no Vm outstanding anywhere. *)
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "site %d settled" i)
      false
      (Vm.has_outstanding (Site.vm (System.site sys i)) ~item:0)
  done;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_hybrid_centralizes_under_reads () =
  let sys = mk_system ~seed:81 () in
  let hybrid = Hybrid.create sys ~hi:0.10 ~lo:0.02 ~check_every:1.0 () in
  Alcotest.(check bool) "starts partitioned" true (Hybrid.mode hybrid ~item:0 = Hybrid.Partitioned);
  (* Read-heavy phase: mostly reads with a few updates. *)
  let reads_ok = ref 0 in
  for i = 1 to 30 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(0.2 *. float_of_int i)
         (fun () ->
           if i mod 5 = 0 then
             Hybrid.submit hybrid ~site:(i mod 4) ~ops:[ (0, Op.Decr 1) ] ~on_done:quiet
           else
             Hybrid.submit_read hybrid ~site:(i mod 4) ~item:0 ~on_done:(fun r ->
                 match r with Site.Committed _ -> incr reads_ok | Site.Aborted _ -> ())))
  done;
  System.run_until sys 10.0;
  Alcotest.(check bool) "flipped to centralized" true
    (Hybrid.mode hybrid ~item:0 = Hybrid.Centralized);
  Alcotest.(check bool) "most reads served" true (!reads_ok > 20);
  (* Value concentrated at the home site. *)
  let h = Hybrid.home hybrid ~item:0 in
  Alcotest.(check bool) "home holds almost everything" true
    (Site.fragment (System.site sys h) ~item:0 > (3 * System.expected_total sys ~item:0) / 4);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

let test_hybrid_repartitions_under_updates () =
  let sys = mk_system ~seed:82 () in
  let hybrid = Hybrid.create sys ~hi:0.10 ~lo:0.02 ~check_every:0.5 () in
  (* Force centralization first with a read burst... *)
  for i = 1 to 15 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(0.1 *. float_of_int i)
         (fun () -> Hybrid.submit_read hybrid ~site:(i mod 4) ~item:0 ~on_done:quiet))
  done;
  System.run_until sys 4.0;
  Alcotest.(check bool) "centralized" true (Hybrid.mode hybrid ~item:0 = Hybrid.Centralized);
  (* ...then a long update-only phase flips it back and spreads the value. *)
  for i = 1 to 60 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(4.0 +. (0.1 *. float_of_int i))
         (fun () ->
           Hybrid.submit hybrid ~site:(i mod 4) ~ops:[ (0, Op.Decr 1) ] ~on_done:quiet))
  done;
  System.run_until sys 15.0;
  Alcotest.(check bool) "back to partitioned" true
    (Hybrid.mode hybrid ~item:0 = Hybrid.Partitioned);
  Alcotest.(check int) "one repartition" 1 (Hybrid.repartitions hybrid);
  (* Every site holds a working share again. *)
  let frags = System.fragments sys ~item:0 in
  Array.iter (fun f -> Alcotest.(check bool) "spread out" true (f > 0)) frags;
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

(* Capped quantities (Section 9 data-type extension by reduction). *)

let test_capped_basic_ops () =
  let sys = System.create ~seed:91 ~n:4 () in
  let c = Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:100 ~initial:60 () in
  Alcotest.(check int) "initial expected" 60 (Capped.expected_value c);
  let r1 = ref None and r2 = ref None in
  Capped.decr c ~site:0 ~amount:10 ~on_done:(fun x -> r1 := Some x);
  Capped.incr c ~site:1 ~amount:5 ~on_done:(fun x -> r2 := Some x);
  System.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "decr ok"
    (Some (Site.Committed { read_value = None }))
    !r1;
  Alcotest.(check (option result_testable)) "incr ok"
    (Some (Site.Committed { read_value = None }))
    !r2;
  Alcotest.(check int) "value tracks" 55 (Capped.expected_value c);
  Alcotest.(check bool) "cap invariant" true (Capped.invariant c)

let test_capped_rejects_overflow () =
  (* Replenishing past the cap exhausts the headroom item: the transaction
     cannot find 50 units of headroom anywhere and times out. *)
  let sys = System.create ~seed:92 ~n:4 () in
  let c = Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:100 ~initial:80 () in
  let r = ref None in
  Capped.incr c ~site:2 ~amount:50 ~on_done:(fun x -> r := Some x);
  System.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "overflow rejected"
    (Some (Site.Aborted Metrics.Timeout))
    !r;
  Alcotest.(check int) "value unchanged" 80 (Capped.expected_value c);
  Alcotest.(check bool) "cap invariant" true (Capped.invariant c)

let test_capped_never_exceeds_cap_under_stress () =
  let sys = System.create ~seed:93 ~n:4 () in
  let c = Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:50 ~initial:25 () in
  let rng = Rng.create 93 in
  for _ = 1 to 80 do
    let at = Rng.float rng 8.0 in
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
           let site = Rng.int rng 4 in
           let m = 1 + Rng.int rng 10 in
           if Rng.bool rng then Capped.incr c ~site ~amount:m ~on_done:quiet
           else Capped.decr c ~site ~amount:m ~on_done:quiet))
  done;
  System.run_until sys 20.0;
  let v = Capped.expected_value c in
  Alcotest.(check bool) "within bounds" true (v >= 0 && v <= 50);
  Alcotest.(check bool) "cap invariant after stress" true (Capped.invariant c)

let test_capped_read () =
  let sys = System.create ~seed:94 ~n:3 () in
  let c = Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:40 ~initial:30 () in
  let r = ref None in
  Capped.read c ~site:1 ~on_done:(fun x -> r := Some x);
  System.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "reads value"
    (Some (Site.Committed { read_value = Some 30 }))
    !r

let test_multi_item_snapshot_read () =
  let sys = mk_system ~seed:87 ~items:[ (0, 100); (1, 60) ] () in
  submit sys ~site:3 ~ops:[ (0, Op.Decr 5) ] ~on_done:quiet;
  submit sys ~site:2 ~ops:[ (1, Op.Incr 10) ] ~on_done:quiet;
  System.run_until sys 1.0;
  let r = ref None in
  submit_read_many sys ~site:0 ~items:[ 0; 1 ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 5.0;
  (match !r with
  | Some (Ok values) ->
    Alcotest.(check (list (pair int int))) "snapshot values" [ (0, 95); (1, 70) ] values
  | Some (Error reason) -> Alcotest.failf "aborted: %s" (Metrics.abort_reason_label reason)
  | None -> Alcotest.fail "pending");
  (* Both items fully drained to the reader. *)
  Alcotest.(check (array int)) "item 0 drained" [| 95; 0; 0; 0 |] (System.fragments sys ~item:0);
  Alcotest.(check (array int)) "item 1 drained" [| 70; 0; 0; 0 |] (System.fragments sys ~item:1);
  Alcotest.(check bool) "conserved" true (System.conserved_all sys)

let test_multi_item_snapshot_read_times_out_under_partition () =
  let sys = mk_system ~seed:88 ~items:[ (0, 100); (1, 60) ] () in
  System.partition sys [ [ 0; 1 ]; [ 2; 3 ] ];
  let r = ref None in
  submit_read_many sys ~site:0 ~items:[ 0; 1 ] ~on_done:(fun x -> r := Some x);
  System.run_until sys 5.0;
  (match !r with
  | Some (Error Metrics.Timeout) -> ()
  | _ -> Alcotest.fail "expected a timeout abort");
  Alcotest.(check bool) "conserved" true (System.conserved_all sys)

(* Backup / restore (the codec made load-bearing). *)

let test_backup_roundtrip_system () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvp-backup-test" in
  let sys = mk_system ~seed:95 ~items:[ (0, 100); (1, 50) ] () in
  submit sys ~site:1 ~ops:[ (0, Op.Decr 40) ] ~on_done:quiet;
  submit sys ~site:2 ~ops:[ (1, Op.Incr 7) ] ~on_done:quiet;
  System.run_until sys 2.0;
  let frags0 = System.fragments sys ~item:0 and frags1 = System.fragments sys ~item:1 in
  let exported = Backup.export_system sys ~dir in
  Alcotest.(check bool) "records exported" true (exported > 0);
  (* A brand-new system with the same shape, restored from the backup. *)
  let sys2 = mk_system ~seed:96 ~items:[ (0, 100); (1, 50) ] () in
  (match Backup.restore_system sys2 ~dir with
  | Ok n -> Alcotest.(check int) "all records restored" exported n
  | Error e -> Alcotest.failf "restore failed: %s" e);
  Alcotest.(check (array int)) "item 0 fragments equal" frags0 (System.fragments sys2 ~item:0);
  Alcotest.(check (array int)) "item 1 fragments equal" frags1 (System.fragments sys2 ~item:1);
  Alcotest.(check bool) "restored system conserved" true (System.conserved_all sys2);
  (* And it is alive: new work commits. *)
  let r = ref None in
  submit sys2 ~site:0 ~ops:[ (0, Op.Decr 5) ] ~on_done:(fun x -> r := Some x);
  System.run_until sys2 4.0;
  Alcotest.(check (option result_testable)) "restored system serves"
    (Some (Site.Committed { read_value = None }))
    !r

let test_backup_restores_outstanding_vm () =
  (* Export while a Vm is outstanding (receiver down); the restored system
     must finish the delivery. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvp-backup-vm-test" in
  let config = { Config.default with Config.request_policy = Config.Ask_all_full } in
  let sys = mk_system ~seed:97 ~config () in
  System.crash_site sys 1;
  submit sys ~site:0 ~ops:[ (0, Op.Decr 30) ] ~on_done:quiet;
  System.run_until sys 2.0;
  ignore (Backup.export_system sys ~dir);
  let sys2 = mk_system ~seed:98 ~config () in
  (match Backup.restore_system sys2 ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore failed: %s" e);
  System.run_until sys2 5.0;
  Alcotest.(check bool) "conserved after restored deliveries" true
    (System.conserved sys2 ~item:0)

let test_backup_rejects_garbage () =
  let path = Filename.temp_file "dvp" ".log" in
  let oc = open_out path in
  output_string oc "T|1|0|0:99\nthis is not a log record\n";
  close_out oc;
  (match Backup.import_records ~path with
  | Error line -> Alcotest.(check string) "names the bad line" "this is not a log record" line
  | Ok _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

let test_restore_system_atomic_on_corrupt_file () =
  (* restore_system validates every site log before mutating anything: one
     corrupt file must fail the whole restore and leave every site — not
     just the corrupt one — exactly as it was. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dvp-backup-atomic-test" in
  let sys = mk_system ~seed:99 ~items:[ (0, 100) ] () in
  submit sys ~site:0 ~ops:[ (0, Op.Decr 10) ] ~on_done:quiet;
  System.run_until sys 2.0;
  ignore (Backup.export_system sys ~dir);
  (* Corrupt the LAST site's file, so a non-atomic restore would already
     have clobbered sites 0..2 by the time it notices. *)
  let bad = Filename.concat dir "site-3.log" in
  let oc = open_out_gen [ Open_append ] 0o644 bad in
  output_string oc "garbage record\n";
  close_out oc;
  let sys2 = mk_system ~seed:100 ~items:[ (0, 100) ] () in
  submit sys2 ~site:2 ~ops:[ (0, Op.Incr 5) ] ~on_done:quiet;
  System.run_until sys2 1.0;
  let before = System.fragments sys2 ~item:0 in
  let log_before = System.stable_log_length sys2 in
  (match Backup.restore_system sys2 ~dir with
  | Error e ->
    Alcotest.(check bool) "error names the corrupt site" true
      (String.length e >= 6 && String.sub e 0 6 = "site 3")
  | Ok _ -> Alcotest.fail "corrupt backup accepted");
  Alcotest.(check (array int)) "no site mutated" before (System.fragments sys2 ~item:0);
  Alcotest.(check int) "no log touched" log_before (System.stable_log_length sys2);
  Alcotest.(check bool) "target still conserved" true (System.conserved_all sys2);
  (* A missing file aborts the same way. *)
  Sys.remove bad;
  (match Backup.restore_system sys2 ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore with a missing site log accepted");
  Alcotest.(check (array int)) "still untouched" before (System.fragments sys2 ~item:0)

(* Conc2 stress: heavy contention on a healthy network — everything waits,
   nothing deadlocks, value is conserved. *)
let test_conc2_contention_stress () =
  let config =
    {
      Config.default with
      Config.cc = Config.Conc2;
      Config.request_policy = Config.Ask_all_full;
    }
  in
  let sys = System.create ~config ~seed:99 ~n:4 () in
  System.add_item sys ~item:0 ~total:100_000 ~split:(`Explicit [ 99_940; 20; 20; 20 ]) ();
  let rng = Rng.create 99 in
  let committed = ref 0 and resolved = ref 0 in
  let jobs = 150 in
  for _ = 1 to jobs do
    let at = Rng.float rng 5.0 in
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
           submit sys ~site:(Rng.int rng 4)
             ~ops:[ (0, Op.Decr (5 + Rng.int rng 10)) ]
             ~on_done:(fun r ->
               incr resolved;
               match r with Site.Committed _ -> incr committed | Site.Aborted _ -> ())))
  done;
  System.run_until sys 30.0;
  Alcotest.(check int) "every job resolved (no deadlock)" jobs !resolved;
  Alcotest.(check bool) "most commit under waiting CC" true
    (float_of_int !committed /. float_of_int jobs > 0.6);
  Alcotest.(check int) "no lock-busy aborts under Conc2" 0
    (Metrics.aborted_by (System.metrics sys) Metrics.Lock_busy);
  Alcotest.(check bool) "conserved" true (System.conserved sys ~item:0)

(* Property: the capped-quantity invariant v + h = cap survives random
   faults, just like plain conservation. *)
let prop_capped_invariant_under_chaos =
  QCheck.Test.make ~name:"capped invariant under random faults" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 3 in
      let link =
        { Dvp_net.Linkstate.default with loss_prob = Rng.float rng 0.25 }
      in
      let sys = System.create ~seed ~link ~n () in
      let c = Capped.create sys ~value_item:0 ~headroom_item:1 ~cap:(40 * n) () in
      for _ = 0 to 40 do
        let at = Rng.float rng 8.0 in
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
               let site = Rng.int rng n in
               if System.site_up sys site then begin
                 let m = 1 + Rng.int rng 8 in
                 if Rng.bool rng then Capped.incr c ~site ~amount:m ~on_done:quiet
                 else Capped.decr c ~site ~amount:m ~on_done:quiet
               end))
      done;
      let victim = Rng.int rng n in
      ignore
        (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:(Rng.float rng 4.0) (fun () ->
             System.crash_site sys victim));
      ignore
        (Dvp_sim.Engine.schedule_at (System.engine sys)
           ~at:(5.0 +. Rng.float rng 3.0)
           (fun () -> System.recover_site sys victim));
      System.run_until sys 30.0;
      Capped.invariant c
      && Capped.expected_value c >= 0
      && Capped.expected_value c <= Capped.cap c)

(* Whole-system determinism: identical seeds must give bit-identical
   outcomes even through faults — the property every experiment relies on. *)
let test_system_determinism_under_faults () =
  let run () =
    let sys = mk_system ~seed:89 ~link:(Dvp_net.Linkstate.lossy 0.2) () in
    let committed = ref 0 and aborted = ref 0 in
    let rng = Rng.create 89 in
    for _ = 1 to 60 do
      let at = Rng.float rng 6.0 in
      ignore
        (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
             if System.site_up sys 1 || true then
               submit sys ~site:(Rng.int rng 4)
                 ~ops:[ (0, Op.Decr (1 + Rng.int rng 5)) ]
                 ~on_done:(fun r ->
                   match r with
                   | Site.Committed _ -> incr committed
                   | Site.Aborted _ -> incr aborted)))
    done;
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:2.0 (fun () ->
           System.crash_site sys 1));
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:4.0 (fun () ->
           System.recover_site sys 1));
    System.run_until sys 15.0;
    let m = System.metrics sys in
    ( !committed,
      !aborted,
      Metrics.messages m,
      Metrics.log_forces m,
      Array.to_list (System.fragments sys ~item:0) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_hybrid_survives_partition () =
  let sys = mk_system ~seed:90 () in
  let hybrid = Hybrid.create sys ~check_every:0.5 () in
  (* Read burst centralizes the item at its home (site 0). *)
  for i = 1 to 15 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(0.1 *. float_of_int i)
         (fun () -> Hybrid.submit_read hybrid ~site:(i mod 4) ~item:0 ~on_done:quiet))
  done;
  System.run_until sys 4.0;
  Alcotest.(check bool) "centralized" true (Hybrid.mode hybrid ~item:0 = Hybrid.Centralized);
  (* Partition away the home; updates elsewhere abort (value is at the
     home), but nothing blocks and nothing is lost. *)
  System.partition sys [ [ 0 ]; [ 1; 2; 3 ] ];
  let aborted = ref 0 in
  for i = 1 to 10 do
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys)
         ~at:(4.0 +. (0.2 *. float_of_int i))
         (fun () ->
           Hybrid.submit hybrid ~site:(1 + (i mod 3))
             ~ops:[ (0, Op.Decr 5) ]
             ~on_done:(fun r -> match r with Site.Aborted _ -> incr aborted | _ -> ())))
  done;
  System.run_until sys 10.0;
  Alcotest.(check bool) "cut-off updates aborted, not blocked" true (!aborted > 0);
  System.heal sys;
  System.run_until sys 15.0;
  Alcotest.(check bool) "conserved through hybrid + partition" true
    (System.conserved sys ~item:0)

(* History checker unit tests. *)

let test_history_accepts_serial () =
  let h = History.create ~initial:100 in
  History.record_update h ~delta:(-10) ~start_time:1.0 ~commit_time:1.1;
  History.record_read h ~value:90 ~start_time:2.0 ~commit_time:2.1;
  History.record_update h ~delta:5 ~start_time:3.0 ~commit_time:3.1;
  History.record_read h ~value:95 ~start_time:4.0 ~commit_time:4.1;
  Alcotest.(check bool) "serial history ok" true (History.check h)

let test_history_accepts_overlap_either_way () =
  (* An update overlapping the read may serialize on either side. *)
  let check_value v =
    let h = History.create ~initial:100 in
    History.record_update h ~delta:(-10) ~start_time:1.9 ~commit_time:2.05;
    History.record_read h ~value:v ~start_time:2.0 ~commit_time:2.1;
    History.check h
  in
  Alcotest.(check bool) "before" true (check_value 90);
  Alcotest.(check bool) "after" true (check_value 100)

let test_history_rejects_lost_update () =
  (* The update committed strictly before the read started, yet the read
     missed it: not serializable. *)
  let h = History.create ~initial:100 in
  History.record_update h ~delta:(-10) ~start_time:1.0 ~commit_time:1.1;
  History.record_read h ~value:100 ~start_time:2.0 ~commit_time:2.1;
  Alcotest.(check bool) "lost update rejected" false (History.check h);
  Alcotest.(check bool) "explains" true (History.explain h <> None)

let test_history_rejects_phantom_value () =
  let h = History.create ~initial:100 in
  History.record_update h ~delta:(-10) ~start_time:1.0 ~commit_time:1.1;
  History.record_read h ~value:85 ~start_time:2.0 ~commit_time:2.1;
  Alcotest.(check bool) "phantom rejected" false (History.check h)

let test_history_rejects_backwards_reads () =
  (* Two non-overlapping reads whose values cannot be connected by the
     intervening updates. *)
  let h = History.create ~initial:100 in
  History.record_read h ~value:100 ~start_time:1.0 ~commit_time:1.1;
  History.record_update h ~delta:(-10) ~start_time:2.0 ~commit_time:2.1;
  History.record_read h ~value:95 ~start_time:3.0 ~commit_time:3.1;
  Alcotest.(check bool) "disconnected reads rejected" false (History.check h)

(* Property: committed DvP histories (updates + drain reads under a healthy
   network) are serializable per the checker. *)
let prop_history_serializable =
  QCheck.Test.make ~name:"committed histories are serializable" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 3 in
      let sys = System.create ~seed ~n () in
      System.add_item sys ~item:0 ~total:(60 * n) ();
      let h = History.create ~initial:(60 * n) in
      let engine = System.engine sys in
      for _ = 0 to 25 do
        let at = Rng.float rng 10.0 in
        ignore
          (Dvp_sim.Engine.schedule_at engine ~at (fun () ->
               let site = Rng.int rng n in
               let m = 1 + Rng.int rng 6 in
               let op = if Rng.bool rng then Op.Decr m else Op.Incr m in
               let t0 = Dvp_sim.Engine.now engine in
               submit sys ~site ~ops:[ (0, op) ] ~on_done:(fun r ->
                   match r with
                   | Site.Committed _ ->
                     History.record_update h ~delta:(Op.delta op) ~start_time:t0
                       ~commit_time:(Dvp_sim.Engine.now engine)
                   | Site.Aborted _ -> ())))
      done;
      for i = 0 to 3 do
        (* Spread reads out so they do not overlap each other. *)
        let at = 2.0 +. (2.5 *. float_of_int i) in
        ignore
          (Dvp_sim.Engine.schedule_at engine ~at (fun () ->
               let site = Rng.int rng n in
               let t0 = Dvp_sim.Engine.now engine in
               submit_read sys ~site ~item:0 ~on_done:(fun r ->
                   match r with
                   | Site.Committed { read_value = Some v } ->
                     History.record_read h ~value:v ~start_time:t0
                       ~commit_time:(Dvp_sim.Engine.now engine)
                   | Site.Committed { read_value = None } | Site.Aborted _ -> ())))
      done;
      System.run_until sys 20.0;
      match History.explain h with
      | None -> System.conserved sys ~item:0
      | Some reason ->
        QCheck.Test.fail_reportf "non-serializable history: %s" reason)

let test_all_features_soak () =
  (* Every optional mechanism enabled at once — proactive redistribution,
     periodic checkpoints, request retries, delayed acks — under loss,
     duplication, a partition window and a crash cycle.  The core guarantees
     must be unimpressed: conservation exact, lock holds bounded. *)
  let config =
    {
      Config.default with
      Config.request_policy = Config.Ask_all_full;
      Config.proactive = Some { Config.default_proactive with Config.min_surplus = 100 };
      Config.request_retries = 2;
      Config.transport = Config.Transport.v ~ack_delay:0.05 ();
    }
  in
  let link = { Dvp_net.Linkstate.default with loss_prob = 0.15; dup_prob = 0.1 } in
  let sys = System.create ~config ~link ~seed:123 ~n:6 () in
  System.add_item sys ~item:0 ~total:30_000 ~split:(`Explicit [ 29_900; 20; 20; 20; 20; 20 ]) ();
  System.add_item sys ~item:1 ~total:12_000 ();
  System.start_periodic_checkpoints sys ~every:1.0;
  let rng = Rng.create 321 in
  let resolved = ref 0 and jobs = 250 in
  for _ = 1 to jobs do
    let at = Rng.float rng 12.0 in
    ignore
      (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
           let site = Rng.int rng 6 in
           if System.site_up sys site then begin
             let item = Rng.int rng 2 in
             let m = 1 + Rng.int rng 12 in
             let op = if Rng.bernoulli rng 0.7 then Op.Decr m else Op.Incr m in
             submit sys ~site ~ops:[ (item, op) ] ~on_done:(fun _ -> incr resolved)
           end
           else incr resolved))
  done;
  Dvp_workload.Faultplan.schedule (Dvp_workload.Driver.of_dvp sys)
    (Dvp_workload.Faultplan.merge
       (Dvp_workload.Faultplan.partition_window ~start:4.0 ~len:3.0
          [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ])
       (Dvp_workload.Faultplan.crash_cycle ~site:4 ~first:8.0 ~downtime:2.0));
  System.run_until sys 40.0;
  Alcotest.(check bool) "most jobs resolved" true (!resolved >= jobs - 5);
  Alcotest.(check bool) "conserved with everything enabled" true (System.conserved_all sys);
  Alcotest.(check bool) "locks still bounded by the timeout" true
    (Metrics.max_lock_hold (System.metrics sys) <= config.Config.txn_timeout +. 1e-6);
  (* Checkpoints kept the logs short despite 12 s of traffic. *)
  Alcotest.(check bool) "log bounded by checkpoints" true (System.stable_log_length sys < 400)

(* Property: conservation holds under random workloads, partitions, crashes,
   loss and duplication. *)
let prop_conservation_under_chaos =
  QCheck.Test.make ~name:"conservation under random faults" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let link =
        {
          Dvp_net.Linkstate.default with
          loss_prob = Rng.float rng 0.3;
          dup_prob = Rng.float rng 0.2;
        }
      in
      let sys = System.create ~seed ~link ~n () in
      System.add_item sys ~item:0 ~total:(20 * n) ();
      let horizon = 10.0 in
      (* Random workload. *)
      for _ = 0 to 30 do
        let at = Rng.float rng horizon in
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys) ~at (fun () ->
               let s = Rng.int rng n in
               if System.site_up sys s then
                 let m = 1 + Rng.int rng 15 in
                 let op = if Rng.bool rng then Op.Decr m else Op.Incr m in
                 submit sys ~site:s ~ops:[ (0, op) ] ~on_done:quiet))
      done;
      (* Random faults: crashes with recovery, one partition window. *)
      let crash_site = Rng.int rng n in
      let t_crash = Rng.float rng (horizon /. 2.0) in
      ignore
        (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:t_crash (fun () ->
             System.crash_site sys crash_site));
      ignore
        (Dvp_sim.Engine.schedule_at (System.engine sys)
           ~at:(t_crash +. 1.0 +. Rng.float rng 3.0)
           (fun () -> System.recover_site sys crash_site));
      if n >= 3 then begin
        let t_part = Rng.float rng horizon in
        let groups = [ [ 0 ]; List.init (n - 1) (fun i -> i + 1) ] in
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys) ~at:t_part (fun () ->
               System.partition sys groups));
        ignore
          (Dvp_sim.Engine.schedule_at (System.engine sys)
             ~at:(t_part +. Rng.float rng 2.0)
             (fun () -> System.heal sys))
      end;
      System.run_until sys (horizon +. 30.0);
      (* Two invariants at once: nothing lost or duplicated, and no
         transaction ever held its locks beyond the timeout (the
         non-blocking guarantee). *)
      System.conserved sys ~item:0
      && Metrics.max_lock_hold (System.metrics sys)
         <= Config.default.Config.txn_timeout +. 1e-6)

let () =
  Alcotest.run "dvp_core"
    [
      ( "value",
        [
          Alcotest.test_case "pi is sum" `Quick test_pi_sum;
          Alcotest.test_case "split even" `Quick test_split_even;
          Alcotest.test_case "split weighted" `Quick test_split_weighted;
          Alcotest.test_case "split random" `Quick test_split_random;
          QCheck_alcotest.to_alcotest prop_partitionable;
          QCheck_alcotest.to_alcotest prop_split_pi;
          QCheck_alcotest.to_alcotest prop_op_commutes_with_pi;
          QCheck_alcotest.to_alcotest prop_ops_commute_pairwise;
        ] );
      ( "op",
        [
          Alcotest.test_case "apply" `Quick test_op_apply;
          Alcotest.test_case "shortfall" `Quick test_op_shortfall;
          Alcotest.test_case "delta" `Quick test_op_delta;
        ] );
      ( "log_event",
        [
          QCheck_alcotest.to_alcotest prop_log_codec_roundtrip;
          Alcotest.test_case "decode garbage" `Quick test_log_decode_garbage;
        ] );
      ( "lock_table",
        [
          Alcotest.test_case "basic" `Quick test_locks_basic;
          Alcotest.test_case "atomic all" `Quick test_locks_atomic_all;
          Alcotest.test_case "release all" `Quick test_locks_release_all;
          Alcotest.test_case "waiters" `Quick test_locks_waiters;
          Alcotest.test_case "waiter on free item" `Quick test_locks_waiter_free_item_runs_now;
          Alcotest.test_case "clear" `Quick test_locks_clear;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "witness" `Quick test_clock_witness;
          Alcotest.test_case "unique across sites" `Quick test_ts_uniqueness_across_sites;
        ] );
      ( "config",
        [
          Alcotest.test_case "grant policies" `Quick test_grant_policies;
          Alcotest.test_case "request targets" `Quick test_request_targets;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "merge reasons" `Quick test_metrics_merge_reasons;
          Alcotest.test_case "per-commit ratios" `Quick test_metrics_per_commit_ratios;
        ] );
      ( "system",
        [
          Alcotest.test_case "local commit, no messages" `Quick test_local_commit_no_messages;
          Alcotest.test_case "write-only commit" `Quick test_write_only_commit;
          Alcotest.test_case "shortfall via Vm" `Quick test_shortfall_via_vm;
          Alcotest.test_case "insufficient times out" `Quick test_insufficient_times_out;
          Alcotest.test_case "single-site system" `Quick test_single_site_system;
          Alcotest.test_case "Section 3 walkthrough" `Quick test_section3_walkthrough;
          Alcotest.test_case "partition: local service continues" `Quick
            test_partition_local_service_continues;
          Alcotest.test_case "partition: remote need times out" `Quick
            test_partition_remote_need_times_out;
          Alcotest.test_case "partition: heal then succeed" `Quick
            test_partition_heal_then_succeed;
          Alcotest.test_case "drain read full value" `Quick test_drain_read_full_value;
          Alcotest.test_case "drain read during partition aborts" `Quick
            test_drain_read_during_partition_aborts;
          Alcotest.test_case "vm survives loss and duplication" `Quick
            test_vm_survives_loss_and_duplication;
          Alcotest.test_case "crash aborts live txns" `Quick test_crash_aborts_live_txns;
          Alcotest.test_case "recovery rebuilds database" `Quick
            test_recovery_rebuilds_database;
          Alcotest.test_case "recovery is independent" `Quick test_recovery_is_independent;
          Alcotest.test_case "vm survives receiver crash" `Quick
            test_vm_outstanding_survives_receiver_crash;
          Alcotest.test_case "conc2 basic commit" `Quick test_conc2_basic_commit;
          Alcotest.test_case "conc2 conflict waits" `Quick
            test_conc2_lock_conflict_waits_not_aborts;
          Alcotest.test_case "conc1 conflict aborts" `Quick test_conc1_lock_conflict_aborts;
          Alcotest.test_case "multi-item transfer" `Quick test_multi_item_transfer;
          Alcotest.test_case "no overselling under stress" `Quick
            test_no_overselling_under_stress;
          Alcotest.test_case "all sites fail, one recovers" `Quick
            test_all_sites_fail_one_recovers;
          Alcotest.test_case "codec round-trips real logs" `Quick
            test_codec_roundtrips_real_logs;
          Alcotest.test_case "checkpoint shrinks log and recovers" `Quick
            test_checkpoint_shrinks_log_and_recovers;
          Alcotest.test_case "checkpoint preserves outstanding vm" `Quick
            test_checkpoint_preserves_outstanding_vm;
          Alcotest.test_case "periodic checkpoints bound log" `Quick
            test_periodic_checkpoints_bound_log;
          Alcotest.test_case "proactive redistribution" `Quick
            test_proactive_redistribution_prepositions_value;
          Alcotest.test_case "proactive off by default" `Quick test_proactive_off_by_default;
          Alcotest.test_case "retrying succeeds after conflicts" `Quick
            test_submit_retrying_succeeds_after_conflicts;
          Alcotest.test_case "retrying gives up" `Quick test_submit_retrying_gives_up;
          Alcotest.test_case "recovery redoes committed-unapplied" `Quick
            test_recovery_redoes_committed_unapplied;
          Alcotest.test_case "applied marker bounds redo" `Quick
            test_recovery_applied_marker_bounds_redo;
          Alcotest.test_case "recovery idempotent (double replay)" `Quick
            test_recovery_idempotent_double_replay;
          QCheck_alcotest.to_alcotest prop_drain_read_consistent;
          Alcotest.test_case "multi-item snapshot read" `Quick test_multi_item_snapshot_read;
          Alcotest.test_case "multi-item read under partition" `Quick
            test_multi_item_snapshot_read_times_out_under_partition;
          Alcotest.test_case "backup round-trip" `Quick test_backup_roundtrip_system;
          Alcotest.test_case "backup restores outstanding vm" `Quick
            test_backup_restores_outstanding_vm;
          Alcotest.test_case "backup rejects garbage" `Quick test_backup_rejects_garbage;
          Alcotest.test_case "restore atomic on corrupt file" `Quick
            test_restore_system_atomic_on_corrupt_file;
          Alcotest.test_case "conc2 contention stress" `Quick test_conc2_contention_stress;
          Alcotest.test_case "determinism under faults" `Quick
            test_system_determinism_under_faults;
          Alcotest.test_case "hybrid survives partition" `Quick test_hybrid_survives_partition;
          Alcotest.test_case "history: serial accepted" `Quick test_history_accepts_serial;
          Alcotest.test_case "history: overlap either way" `Quick
            test_history_accepts_overlap_either_way;
          Alcotest.test_case "history: lost update rejected" `Quick
            test_history_rejects_lost_update;
          Alcotest.test_case "history: phantom rejected" `Quick
            test_history_rejects_phantom_value;
          Alcotest.test_case "history: backwards reads rejected" `Quick
            test_history_rejects_backwards_reads;
          QCheck_alcotest.to_alcotest prop_history_serializable;
          QCheck_alcotest.to_alcotest prop_capped_invariant_under_chaos;
          Alcotest.test_case "all-features soak" `Slow test_all_features_soak;
          Alcotest.test_case "request retries survive lossy requests" `Quick
            test_request_retries_survive_lossy_requests;
          Alcotest.test_case "delayed acks reduce messages" `Quick
            test_delayed_acks_reduce_messages;
          Alcotest.test_case "delayed acks still settle" `Quick
            test_delayed_acks_still_settle;
          Alcotest.test_case "hybrid centralizes under reads" `Quick
            test_hybrid_centralizes_under_reads;
          Alcotest.test_case "hybrid repartitions under updates" `Quick
            test_hybrid_repartitions_under_updates;
          Alcotest.test_case "capped: basic ops" `Quick test_capped_basic_ops;
          Alcotest.test_case "capped: rejects overflow" `Quick test_capped_rejects_overflow;
          Alcotest.test_case "capped: stress stays in bounds" `Quick
            test_capped_never_exceeds_cap_under_stress;
          Alcotest.test_case "capped: read" `Quick test_capped_read;
          QCheck_alcotest.to_alcotest prop_conservation_under_chaos;
        ] );
    ]
