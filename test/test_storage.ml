(* Tests for dvp_storage: WAL crash semantics, stable cells, local DB. *)

open Dvp_storage

(* ------------------------------------------------------------------ Wal *)

let test_wal_append_force () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append w "b";
  Alcotest.(check (list string)) "stable order" [ "a"; "b" ] (Wal.records w);
  Alcotest.(check int) "forces counted" 2 (Wal.forces w)

let test_wal_unforced_lost_on_crash () =
  let w = Wal.create () in
  Wal.append w "durable";
  Wal.append ~forced:false w "volatile";
  Alcotest.(check int) "buffered" 1 (Wal.buffered w);
  Wal.crash w;
  Alcotest.(check (list string)) "only forced survives" [ "durable" ] (Wal.records w);
  Alcotest.(check int) "buffer gone" 0 (Wal.buffered w)

let test_wal_force_flushes_batch () =
  let w = Wal.create () in
  Wal.append ~forced:false w 1;
  Wal.append ~forced:false w 2;
  Wal.append ~forced:false w 3;
  Alcotest.(check (list int)) "nothing stable yet" [] (Wal.records w);
  Wal.force w;
  Alcotest.(check (list int)) "batch in order" [ 1; 2; 3 ] (Wal.records w)

let test_wal_forced_append_flushes_earlier () =
  (* A forced append makes everything buffered before it durable too (the
     log is sequential). *)
  let w = Wal.create () in
  Wal.append ~forced:false w "early";
  Wal.append w "forced";
  Wal.crash w;
  Alcotest.(check (list string)) "both stable" [ "early"; "forced" ] (Wal.records w)

(* A transient sink fault (ENOSPC, EIO on the file mirror) must surface as a
   typed, counted error — never an exception into the forcing event loop —
   and the failing batch must be retained and re-offered so the file heals
   without a coverage gap or a duplicate. *)
let test_wal_sink_failure_heals () =
  let w = Wal.create () in
  let mirrored = ref [] in
  let failures_left = ref 2 in
  Wal.set_force_sink w (fun batch ->
      if !failures_left > 0 then begin
        decr failures_left;
        failwith "ENOSPC"
      end;
      mirrored := !mirrored @ batch);
  let errors_seen = ref [] in
  Wal.set_on_force_error w (fun e -> errors_seen := e :: !errors_seen);
  Wal.append w "a";
  (* force #1: sink refused "a" — typed error, batch retained. *)
  Alcotest.(check int) "one typed error" 1 (Wal.force_errors w);
  Alcotest.(check int) "batch retained for re-offer" 1 (Wal.sink_pending w);
  Alcotest.(check (list string)) "stable region unaffected" [ "a" ] (Wal.records w);
  Alcotest.(check bool) "hook fired with the pre-increment force counter" true
    (match !errors_seen with [ e ] -> e.Wal.at_force = 0 | _ -> false);
  Wal.append w "b";
  (* force #2 re-offers [a; b], fails again. *)
  Alcotest.(check int) "second failure counted" 2 (Wal.force_errors w);
  Alcotest.(check int) "both records pending" 2 (Wal.sink_pending w);
  Wal.append w "c";
  (* force #3: the fault cleared — everything reaches the mirror, in order,
     exactly once. *)
  Alcotest.(check int) "no more errors" 2 (Wal.force_errors w);
  Alcotest.(check int) "nothing pending after heal" 0 (Wal.sink_pending w);
  Alcotest.(check (list string)) "mirror caught up, no gaps, no duplicates"
    [ "a"; "b"; "c" ] !mirrored;
  Alcotest.(check bool) "last error kept for telemetry" true
    (match Wal.last_force_error w with
    | Some e -> e.Wal.message <> ""
    | None -> false)

let test_wal_records_survive_crash () =
  let w = Wal.create () in
  for i = 1 to 100 do
    Wal.append w i
  done;
  Wal.crash w;
  Alcotest.(check int) "all stable" 100 (Wal.stable_length w);
  Alcotest.(check (list int)) "order kept" (List.init 100 (fun i -> i + 1)) (Wal.records w)

let test_wal_iter_fold () =
  let w = Wal.create () in
  List.iter (Wal.append w) [ 1; 2; 3; 4 ];
  let sum = Wal.fold w ~init:0 ~f:( + ) in
  Alcotest.(check int) "fold sum" 10 sum;
  let count = ref 0 in
  Wal.iter w (fun _ -> incr count);
  Alcotest.(check int) "iter count" 4 !count

let test_wal_appended_counter () =
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append ~forced:false w "b";
  Wal.crash w;
  Alcotest.(check int) "appended counts lost ones" 2 (Wal.appended w)

let test_wal_truncate () =
  let w = Wal.create () in
  for i = 0 to 9 do
    Wal.append w i
  done;
  Wal.truncate_before w ~keep_from:6;
  Alcotest.(check (list int)) "suffix kept in order" [ 6; 7; 8; 9 ] (Wal.records w);
  (* Truncating to an already-dropped point is a no-op. *)
  Wal.truncate_before w ~keep_from:3;
  Alcotest.(check int) "idempotent-ish" 4 (Wal.stable_length w)

let test_wal_truncate_then_append () =
  let w = Wal.create () in
  for i = 0 to 4 do
    Wal.append w i
  done;
  Wal.truncate_before w ~keep_from:3;
  Wal.append w 99;
  Alcotest.(check (list int)) "append after truncate" [ 3; 4; 99 ] (Wal.records w)

(* Property: for a random interleaving of appends (forced/unforced), forces
   and crashes, the stable log is always a prefix-closed subsequence of the
   appended sequence, and equals it if every append was forced. *)
let prop_wal_stability =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun b -> `Append b) bool);
          (1, return `Force);
          (1, return `Crash);
        ])
  in
  QCheck.Test.make ~name:"wal stable log is a faithful prefix under crashes" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) op_gen))
    (fun ops ->
      let w = Wal.create () in
      let produced = ref [] in
      (* reference: track which appends must be stable *)
      let stable_ref = ref [] and buffer_ref = ref [] in
      let n = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Append forced ->
            incr n;
            let v = !n in
            produced := v :: !produced;
            Wal.append ~forced w v;
            buffer_ref := v :: !buffer_ref;
            if forced then begin
              stable_ref := !buffer_ref @ !stable_ref;
              buffer_ref := []
            end
          | `Force ->
            Wal.force w;
            stable_ref := !buffer_ref @ !stable_ref;
            buffer_ref := []
          | `Crash ->
            Wal.crash w;
            buffer_ref := [])
        ops;
      Wal.records w = List.rev !stable_ref)

(* A torn flush: the crash persists only a prefix of the buffer, and the
   newest surviving record has a bad checksum.  Valid-prefix reads hide the
   bad tail; repair truncates it physically. *)
let test_wal_torn_write () =
  let w = Wal.create () in
  Wal.append w "forced";
  List.iter (fun r -> Wal.append ~forced:false w r) [ "b1"; "b2"; "b3" ];
  Wal.inject_fault w (Wal.Torn { persist = 2 });
  Wal.crash w;
  (* b1 and b2 reached stable storage, b2 torn mid-record; b3 was lost. *)
  Alcotest.(check int) "physical length" 3 (Wal.stable_length w);
  Alcotest.(check int) "one corrupt record" 1 (Wal.corrupt_tail w);
  Alcotest.(check (list string)) "reads stop before the tear" [ "forced"; "b1" ] (Wal.records w);
  let dropped = Wal.repair w in
  Alcotest.(check int) "repair drops the tear" 1 dropped;
  Alcotest.(check int) "tail clean" 0 (Wal.corrupt_tail w);
  Alcotest.(check int) "repair counted" 1 (Wal.repairs w);
  Alcotest.(check int) "records truncated counted" 1 (Wal.repaired_records w);
  (* The log grows normally after repair. *)
  Wal.append w "after";
  Alcotest.(check (list string)) "append after repair" [ "forced"; "b1"; "after" ] (Wal.records w)

let test_wal_corrupt_tail () =
  let w = Wal.create () in
  Wal.append w "keep";
  List.iter (fun r -> Wal.append ~forced:false w r) [ "x"; "y" ];
  Wal.inject_fault w Wal.Corrupt_tail;
  Wal.crash w;
  (* Whole buffer persisted, newest record corrupted. *)
  Alcotest.(check int) "physical length" 3 (Wal.stable_length w);
  Alcotest.(check int) "one corrupt record" 1 (Wal.corrupt_tail w);
  Alcotest.(check (list string)) "valid prefix" [ "keep"; "x" ] (Wal.records w);
  Alcotest.(check int) "repair" 1 (Wal.repair w);
  Alcotest.(check (list string)) "unchanged after repair" [ "keep"; "x" ] (Wal.records w)

let test_wal_fault_without_buffer () =
  (* A fault armed while the buffer is empty has nothing to tear: forced
     records are never touched. *)
  let w = Wal.create () in
  Wal.append w "a";
  Wal.append w "b";
  Wal.inject_fault w Wal.Corrupt_tail;
  Wal.crash w;
  Alcotest.(check (list string)) "forced records untouched" [ "a"; "b" ] (Wal.records w);
  Alcotest.(check int) "nothing to repair" 0 (Wal.repair w)

let test_wal_fault_consumed_by_crash () =
  let w = Wal.create () in
  Wal.inject_fault w Wal.Corrupt_tail;
  Alcotest.(check bool) "armed" true (Wal.pending_fault w <> None);
  Wal.crash w;
  Alcotest.(check bool) "disarmed after crash" true (Wal.pending_fault w = None);
  (* The next crash is clean. *)
  Wal.append ~forced:false w "z";
  Wal.crash w;
  Alcotest.(check int) "no corruption" 0 (Wal.corrupt_tail w)

(* end_index names the next record's global position; truncation (the
   checkpoint mechanism) must never move it backwards, so positions stay
   stable names across checkpoints. *)
let test_wal_end_index_monotone () =
  let w = Wal.create () in
  let last = ref (Wal.end_index w) in
  let check_monotone () =
    let e = Wal.end_index w in
    Alcotest.(check bool) "end_index never decreases" true (e >= !last);
    last := e
  in
  for round = 0 to 4 do
    for i = 0 to 9 do
      Wal.append w ((round * 10) + i);
      check_monotone ()
    done;
    (* a checkpoint: truncate everything but the last two records *)
    Wal.truncate_before w ~keep_from:(Wal.end_index w - 2);
    check_monotone ();
    Alcotest.(check int) "two records kept" 2 (Wal.stable_length w)
  done;
  Alcotest.(check int) "fifty appends" 50 (Wal.end_index w)

let test_wal_repair_preserves_end_index_base () =
  (* Repair shortens the log, so end_index steps back by the records
     dropped — but a subsequent append reuses exactly those positions, and
     truncate_before still works against the new indices. *)
  let w = Wal.create () in
  for i = 0 to 4 do
    Wal.append w i
  done;
  List.iter (fun r -> Wal.append ~forced:false w r) [ 5; 6 ];
  Wal.inject_fault w (Wal.Torn { persist = 2 });
  Wal.crash w;
  ignore (Wal.repair w);
  Alcotest.(check int) "end_index back to valid prefix" 6 (Wal.end_index w);
  Wal.append w 99;
  Alcotest.(check (list int)) "position reused" [ 0; 1; 2; 3; 4; 5; 99 ] (Wal.records w)

let test_wal_iter_from () =
  let w = Wal.create () in
  for i = 0 to 9 do
    Wal.append w i
  done;
  let collect ~from =
    let acc = ref [] in
    Wal.iter_from w ~from (fun r -> acc := r :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "from 0 is the whole log" (List.init 10 Fun.id) (collect ~from:0);
  Alcotest.(check (list int)) "mid-log suffix" [ 7; 8; 9 ] (collect ~from:7);
  Alcotest.(check (list int)) "past the end is empty" [] (collect ~from:10);
  (* After a checkpoint the base moves; indices below it are skipped. *)
  Wal.truncate_before w ~keep_from:6;
  Alcotest.(check (list int)) "below base clamps to base" [ 6; 7; 8; 9 ] (collect ~from:2);
  Alcotest.(check (list int)) "absolute index still names same record" [ 8; 9 ] (collect ~from:8);
  (* iter_from stops at the corrupt tail like every other reader. *)
  List.iter (fun r -> Wal.append ~forced:false w r) [ 10; 11 ];
  Wal.inject_fault w Wal.Corrupt_tail;
  Wal.crash w;
  Alcotest.(check (list int)) "valid prefix only" [ 9; 10 ] (collect ~from:9)

(* ----------------------------------------------- Wal equivalence (model) *)

(* The pre-optimisation WAL, verbatim semantics: two newest-first lists with
   linear scans everywhere.  It is deliberately naive — the point is that the
   indexed implementation in [Dvp_storage.Wal] must be observably identical
   to it over arbitrary scripts of appends, forces, crashes, faults, repairs
   and truncations. *)
module Model = struct
  type 'r entry = { payload : 'r; sum : int }

  type 'r t = {
    mutable stable : 'r entry list; (* newest first *)
    mutable stable_len : int;
    mutable buffer : 'r entry list; (* newest first *)
    mutable buffer_len : int;
    mutable base_index : int;
    mutable pending_fault : Wal.fault option;
    mutable repaired_count : int;
    mutable repair_count : int;
  }

  let checksum payload = Hashtbl.hash payload

  let valid e = e.sum = checksum e.payload

  let create () =
    {
      stable = [];
      stable_len = 0;
      buffer = [];
      buffer_len = 0;
      base_index = 0;
      pending_fault = None;
      repaired_count = 0;
      repair_count = 0;
    }

  let force t =
    if t.buffer_len > 0 then begin
      t.stable <- t.buffer @ t.stable;
      t.stable_len <- t.stable_len + t.buffer_len;
      t.buffer <- [];
      t.buffer_len <- 0
    end

  let append ?(forced = true) t r =
    t.buffer <- { payload = r; sum = checksum r } :: t.buffer;
    t.buffer_len <- t.buffer_len + 1;
    if forced then force t

  let inject_fault t f = t.pending_fault <- Some f

  let apply_fault t f =
    let persist =
      match f with
      | Wal.Torn { persist } -> min (max persist 0) t.buffer_len
      | Wal.Corrupt_tail -> t.buffer_len
    in
    if persist > 0 then begin
      let surviving = List.filteri (fun i _ -> i >= t.buffer_len - persist) t.buffer in
      let corrupted =
        match surviving with
        | newest :: rest -> { newest with sum = lnot newest.sum } :: rest
        | [] -> []
      in
      t.stable <- corrupted @ t.stable;
      t.stable_len <- t.stable_len + persist
    end

  let crash t =
    (match t.pending_fault with Some f -> apply_fault t f | None -> ());
    t.pending_fault <- None;
    t.buffer <- [];
    t.buffer_len <- 0

  let valid_entries t =
    let rec take acc = function
      | e :: rest when valid e -> take (e :: acc) rest
      | _ -> List.rev acc
    in
    take [] (List.rev t.stable)

  let records t = List.map (fun e -> e.payload) (valid_entries t)

  let corrupt_tail t = t.stable_len - List.length (valid_entries t)

  let repair t =
    let bad = corrupt_tail t in
    if bad > 0 then begin
      let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
      t.stable <- drop bad t.stable;
      t.stable_len <- t.stable_len - bad;
      t.repair_count <- t.repair_count + 1;
      t.repaired_count <- t.repaired_count + bad
    end;
    bad

  let end_index t = t.base_index + t.stable_len

  let truncate_before t ~keep_from =
    let drop = keep_from - t.base_index in
    if drop > 0 then begin
      let keep = max 0 (t.stable_len - drop) in
      let rec take n l acc =
        if n = 0 then List.rev acc
        else match l with [] -> List.rev acc | x :: rest -> take (n - 1) rest (x :: acc)
      in
      t.stable <- take keep t.stable [];
      t.stable_len <- keep;
      t.base_index <- keep_from
    end
end

(* Equivalence property: run the same random script against the indexed WAL
   and the list model, and after every step compare every observable the rest
   of the system reads.  This is the safety net for the growable-array
   rewrite: any divergence in fault semantics, valid-prefix reads, repair
   accounting or index arithmetic shows up as a shrunk counterexample
   script. *)
let prop_wal_equivalence =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun b -> `Append b) bool);
          (2, return `Force);
          (2, return `Crash);
          (1, map (fun k -> `Inject_torn k) (int_range 0 6));
          (1, return `Inject_corrupt);
          (2, return `Repair);
          (1, map (fun k -> `Truncate k) (int_range 0 50));
        ])
  in
  let pp_op = function
    | `Append b -> Printf.sprintf "Append(forced=%b)" b
    | `Force -> "Force"
    | `Crash -> "Crash"
    | `Inject_torn k -> Printf.sprintf "Inject_torn(%d)" k
    | `Inject_corrupt -> "Inject_corrupt"
    | `Repair -> "Repair"
    | `Truncate k -> Printf.sprintf "Truncate(keep_from=%d)" k
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
      QCheck.Gen.(list_size (int_range 0 80) op_gen)
  in
  QCheck.Test.make ~name:"indexed wal is observably equal to the list model" ~count:500 arb
    (fun ops ->
      let w = Wal.create () in
      let m = Model.create () in
      let n = ref 0 in
      List.for_all
        (fun op ->
          let repairs_agree =
            match op with
            | `Append forced ->
              incr n;
              Wal.append ~forced w !n;
              Model.append ~forced m !n;
              true
            | `Force ->
              Wal.force w;
              Model.force m;
              true
            | `Crash ->
              Wal.crash w;
              Model.crash m;
              true
            | `Inject_torn k ->
              Wal.inject_fault w (Wal.Torn { persist = k });
              Model.inject_fault m (Wal.Torn { persist = k });
              true
            | `Inject_corrupt ->
              Wal.inject_fault w Wal.Corrupt_tail;
              Model.inject_fault m Wal.Corrupt_tail;
              true
            | `Repair -> Wal.repair w = Model.repair m
            | `Truncate keep_from ->
              Wal.truncate_before w ~keep_from;
              Model.truncate_before m ~keep_from;
              true
          in
          let from_records =
            let acc = ref [] in
            Wal.iter_from w ~from:(Wal.end_index w - Wal.stable_length w) (fun r ->
                acc := r :: !acc);
            List.rev !acc
          in
          repairs_agree
          && Wal.records w = Model.records m
          && from_records = Model.records m
          && Wal.corrupt_tail w = Model.corrupt_tail m
          && Wal.stable_length w = m.Model.stable_len
          && Wal.buffered w = m.Model.buffer_len
          && Wal.end_index w = Model.end_index m
          && Wal.repairs w = m.Model.repair_count
          && Wal.repaired_records w = m.Model.repaired_count)
        ops)

(* --------------------------------------------------------------- Stable *)

let test_stable_cell_survives () =
  let reg = Stable.region () in
  let c = Stable.cell reg 10 in
  Stable.set c 42;
  Stable.crash_volatile reg;
  Alcotest.(check int) "stable survives" 42 (Stable.get c)

let test_volatile_resets () =
  let reg = Stable.region () in
  let v = Stable.volatile reg (fun () -> 0) in
  Stable.vset v 99;
  Alcotest.(check int) "set works" 99 (Stable.vget v);
  Stable.crash_volatile reg;
  Alcotest.(check int) "reset on crash" 0 (Stable.vget v)

let test_stable_write_count () =
  let reg = Stable.region () in
  let c = Stable.cell reg 0 in
  Stable.set c 1;
  Stable.set c 2;
  Alcotest.(check int) "writes counted" 2 (Stable.writes reg)

let test_crash_reruns_thunks_once () =
  (* Every registered re-init thunk runs exactly once per crash — recovery
     that re-initialised twice (or skipped a structure) would leak state
     between incarnations. *)
  let reg = Stable.region () in
  let runs_a = ref 0 and runs_b = ref 0 in
  let a =
    Stable.volatile reg (fun () ->
        incr runs_a;
        0)
  in
  let b =
    Stable.volatile reg (fun () ->
        incr runs_b;
        "fresh")
  in
  (* registration itself evaluates the thunk once for the initial value *)
  let init_a = !runs_a and init_b = !runs_b in
  for crash = 1 to 3 do
    Stable.vset a crash;
    Stable.vset b "dirty";
    Stable.crash_volatile reg;
    Alcotest.(check int) "a thunk once per crash" (init_a + crash) !runs_a;
    Alcotest.(check int) "b thunk once per crash" (init_b + crash) !runs_b;
    Alcotest.(check int) "a reset" 0 (Stable.vget a);
    Alcotest.(check string) "b reset" "fresh" (Stable.vget b)
  done

let test_multiple_volatiles () =
  let reg = Stable.region () in
  let a = Stable.volatile reg (fun () -> "init-a") in
  let b = Stable.volatile reg (fun () -> "init-b") in
  Stable.vset a "x";
  Stable.vset b "y";
  Stable.crash_volatile reg;
  Alcotest.(check string) "a reset" "init-a" (Stable.vget a);
  Alcotest.(check string) "b reset" "init-b" (Stable.vget b)

(* ------------------------------------------------------------- Local_db *)

let test_db_defaults () =
  let db = Local_db.create () in
  Alcotest.(check int) "missing value is 0" 0 (Local_db.value db ~item:7);
  Alcotest.(check bool) "not mem" false (Local_db.mem db ~item:7);
  Local_db.ensure db ~item:7;
  Alcotest.(check bool) "mem after ensure" true (Local_db.mem db ~item:7)

let test_db_set_add () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:1 25;
  Local_db.add db ~item:1 (-10);
  Alcotest.(check int) "after ops" 15 (Local_db.value db ~item:1);
  Local_db.add db ~item:1 5;
  Alcotest.(check int) "incr" 20 (Local_db.value db ~item:1)

let test_db_nonnegative () =
  let db = Local_db.create () in
  Alcotest.check_raises "negative set"
    (Invalid_argument "Local_db.set_value: fragments are nonnegative") (fun () ->
      Local_db.set_value db ~item:1 (-1));
  Local_db.set_value db ~item:1 3;
  Alcotest.check_raises "negative add"
    (Invalid_argument "Local_db.add: fragment would go negative") (fun () ->
      Local_db.add db ~item:1 (-4))

let test_db_timestamps () =
  let db = Local_db.create () in
  Alcotest.(check bool) "default ts zero" true
    (Local_db.ts_compare (Local_db.timestamp db ~item:2) Local_db.ts_zero = 0);
  Local_db.set_timestamp db ~item:2 (5, 1);
  Alcotest.(check bool) "updated" true
    (Local_db.ts_compare (Local_db.timestamp db ~item:2) (5, 1) = 0)

let test_ts_ordering () =
  Alcotest.(check bool) "counter dominates" true (Local_db.ts_compare (1, 9) (2, 0) < 0);
  Alcotest.(check bool) "site breaks ties" true (Local_db.ts_compare (1, 0) (1, 1) < 0);
  Alcotest.(check bool) "equal" true (Local_db.ts_compare (3, 2) (3, 2) = 0)

let test_db_items_total () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:3 10;
  Local_db.set_value db ~item:1 5;
  Local_db.set_value db ~item:2 0;
  Alcotest.(check (list int)) "items sorted" [ 1; 2; 3 ] (Local_db.items db);
  Alcotest.(check int) "total" 15 (Local_db.total db)

let test_db_wipe () =
  let db = Local_db.create () in
  Local_db.set_value db ~item:1 5;
  Local_db.wipe db;
  Alcotest.(check (list int)) "empty" [] (Local_db.items db);
  Alcotest.(check int) "no value" 0 (Local_db.value db ~item:1)

let () =
  Alcotest.run "dvp_storage"
    [
      ( "wal",
        [
          Alcotest.test_case "append+force" `Quick test_wal_append_force;
          Alcotest.test_case "unforced lost on crash" `Quick test_wal_unforced_lost_on_crash;
          Alcotest.test_case "force flushes batch" `Quick test_wal_force_flushes_batch;
          Alcotest.test_case "forced append flushes earlier" `Quick
            test_wal_forced_append_flushes_earlier;
          Alcotest.test_case "sink failure typed, retained, healed" `Quick
            test_wal_sink_failure_heals;
          Alcotest.test_case "records survive crash" `Quick test_wal_records_survive_crash;
          Alcotest.test_case "iter/fold" `Quick test_wal_iter_fold;
          Alcotest.test_case "appended counter" `Quick test_wal_appended_counter;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "truncate then append" `Quick test_wal_truncate_then_append;
          Alcotest.test_case "torn write" `Quick test_wal_torn_write;
          Alcotest.test_case "corrupt tail" `Quick test_wal_corrupt_tail;
          Alcotest.test_case "fault without buffer" `Quick test_wal_fault_without_buffer;
          Alcotest.test_case "fault consumed by crash" `Quick test_wal_fault_consumed_by_crash;
          Alcotest.test_case "end_index monotone across checkpoints" `Quick
            test_wal_end_index_monotone;
          Alcotest.test_case "repair rewinds end_index to valid prefix" `Quick
            test_wal_repair_preserves_end_index_base;
          Alcotest.test_case "iter_from" `Quick test_wal_iter_from;
          QCheck_alcotest.to_alcotest prop_wal_stability;
          QCheck_alcotest.to_alcotest prop_wal_equivalence;
        ] );
      ( "stable",
        [
          Alcotest.test_case "cell survives crash" `Quick test_stable_cell_survives;
          Alcotest.test_case "volatile resets" `Quick test_volatile_resets;
          Alcotest.test_case "write count" `Quick test_stable_write_count;
          Alcotest.test_case "crash reruns thunks exactly once" `Quick
            test_crash_reruns_thunks_once;
          Alcotest.test_case "multiple volatiles" `Quick test_multiple_volatiles;
        ] );
      ( "local_db",
        [
          Alcotest.test_case "defaults" `Quick test_db_defaults;
          Alcotest.test_case "set/add" `Quick test_db_set_add;
          Alcotest.test_case "nonnegative" `Quick test_db_nonnegative;
          Alcotest.test_case "timestamps" `Quick test_db_timestamps;
          Alcotest.test_case "ts ordering" `Quick test_ts_ordering;
          Alcotest.test_case "items/total" `Quick test_db_items_total;
          Alcotest.test_case "wipe" `Quick test_db_wipe;
        ] );
    ]
