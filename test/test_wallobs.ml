(* Tests for the wall-clock observability plane: per-domain trace shards and
   their totally-ordered merge, span analysis over merged wall dumps (commit
   counts must agree with Metrics on both substrates), the conservation
   watchdog's freeze-barrier cuts, and the observer's live feed. *)

module Trace = Dvp_trace.Trace
module Shards = Dvp_trace.Shards
module Spans = Dvp_obs.Spans
module Metrics = Dvp_core.Metrics
module System = Dvp_core.System
module Site = Dvp_core.Site
module Txn = Dvp_core.Txn
module Op = Dvp_core.Op
module Cluster = Dvp_runtime.Cluster
module Observer = Dvp_runtime.Observer

(* ------------------------------------------- merged total order (property) *)

(* Random shard contents with per-shard monotone timestamps (what the
   runtime's clamped clocks guarantee), small capacities so eviction is
   exercised too; the merge must come out totally ordered by
   (time, shard, seq) with per-shard seqs strictly increasing. *)
let prop_merged_total_order =
  let gen =
    QCheck.Gen.(
      let shard_events = list_size (int_bound 40) (pair (int_bound 7) pfloat) in
      pair (int_range 1 4) (list_size (int_range 1 4) shard_events))
  in
  QCheck.Test.make ~count:100 ~name:"merged multi-shard trace is totally ordered"
    (QCheck.make gen) (fun (capacity_sel, per_shard) ->
      let n = List.length per_shard in
      let capacity = [| 8; 16; 64; 1024 |].(capacity_sel - 1) in
      let shards = Shards.create ~capacity ~n () in
      List.iteri
        (fun i events ->
          let tr = Shards.shard shards i in
          let time = ref 0.0 in
          List.iter
            (fun (site, dt) ->
              time := !time +. (Float.min dt 10.0 /. 10.0);
              Trace.emit tr ~time:!time (Trace.Txn_commit { site; txn = (site, i) }))
            events)
        per_shard;
      let merged = Shards.merged shards in
      let last_seq = Hashtbl.create 8 in
      let rec ordered = function
        | [] | [ _ ] -> true
        | (s1, q1, t1, _) :: ((s2, q2, t2, _) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && (s1 < s2 || (s1 = s2 && q1 < q2)))) && ordered rest
      in
      let seqs_increase =
        List.for_all
          (fun (shard, seq, _, _) ->
            let prev = Hashtbl.find_opt last_seq shard in
            Hashtbl.replace last_seq shard seq;
            match prev with None -> true | Some p -> seq > p)
          merged
      in
      ordered merged && seqs_increase)

(* ------------------------------- span commit counts vs Metrics, DES side *)

let test_des_spans_match_metrics () =
  let trace = Trace.create ~capacity:65536 () in
  let sys = System.create ~seed:11 ~trace ~n:3 () in
  System.add_item sys ~item:0 ~total:300 ();
  for k = 0 to 199 do
    System.exec sys
      (Txn.write ~site:(k mod 3) [ (0, Op.Incr 1) ])
      ~on_done:(fun _ -> ())
  done;
  System.run_for sys 5.0;
  let metrics_committed =
    let total = ref 0 in
    for i = 0 to 2 do
      total := !total + Metrics.committed (Site.metrics (System.site sys i))
    done;
    !total
  in
  let spans = Spans.of_trace trace in
  Alcotest.(check bool) "trace complete" true spans.Spans.complete;
  Alcotest.(check int) "span commits = metrics commits" metrics_committed
    (Spans.committed_count spans);
  (* The JSONL round trip must agree too — analyze works off the dump. *)
  let spans' = Spans.of_jsonl (Trace.to_jsonl trace) in
  Alcotest.(check int) "jsonl commits" metrics_committed (Spans.committed_count spans')

(* ------------------------------ span commit counts vs Metrics, wall side *)

let test_wall_spans_match_metrics () =
  let c =
    Cluster.create ~seed:7 ~tracing:true ~trace_capacity:(1 lsl 20) ~n:2
      ~items:[ (0, 10_000) ] ()
  in
  let committed = Cluster.run_load c ~duration:0.3 ~item:0 () in
  Alcotest.(check bool) "quiesced" true (Cluster.quiesce c);
  let stats = Cluster.stats c in
  let metrics_committed =
    Array.fold_left
      (fun acc st -> acc + Metrics.committed st.Cluster.st_metrics)
      0 stats
  in
  Alcotest.(check int) "run_load total = metrics" committed metrics_committed;
  let jsonl = Option.get (Cluster.trace_jsonl c) in
  Cluster.stop c;
  let spans = Spans.of_jsonl jsonl in
  Alcotest.(check bool) "merged trace complete" true spans.Spans.complete;
  Alcotest.(check int) "merged span commits = metrics commits" metrics_committed
    (Spans.committed_count spans);
  (* And the merged stream itself is totally ordered. *)
  let events = Trace.of_jsonl jsonl in
  let rec nondecreasing = function
    | [] | [ _ ] -> true
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && nondecreasing rest
  in
  Alcotest.(check bool) "timestamps nondecreasing" true (nondecreasing events)

(* ------------------------------------------------- watchdog cut sampling *)

(* Cuts taken while value is actively moving between sites must conserve
   exactly: the freeze barrier means no Vm send crosses the cut backwards,
   so fragments + in-flight = initial + committed deltas, no tolerance. *)
let test_cut_consistent_under_load () =
  let c = Cluster.create ~seed:3 ~n:2 ~items:[ (0, 1_000) ] () in
  let stop_load = Atomic.make false in
  let loader =
    Domain.spawn (fun () ->
        let k = ref 0 in
        while not (Atomic.get stop_load) do
          incr k;
          let src = !k mod 2 in
          ignore (Cluster.push_value c ~src ~dst:(1 - src) ~item:0 ~amount:3);
          (match
             Cluster.exec c (Txn.write ~site:src [ (0, Op.Incr 1) ])
           with
          | _ -> ())
        done)
  in
  let violations = ref 0 and cuts = ref 0 and in_flight_seen = ref 0 in
  for _ = 1 to 25 do
    let cut = Cluster.sample_cut c in
    incr cuts;
    if not (Cluster.cut_ok cut) then incr violations;
    List.iter
      (fun ci -> if ci.Cluster.ci_in_flight <> 0 then incr in_flight_seen)
      cut.Cluster.cut_items;
    Unix.sleepf 0.002
  done;
  Atomic.set stop_load true;
  Domain.join loader;
  Alcotest.(check bool) "quiesced" true (Cluster.quiesce c);
  let final = Cluster.conserved_all c in
  Cluster.stop c;
  Alcotest.(check int) "no cut violated conservation" 0 !violations;
  Alcotest.(check bool) "final conservation" true final

(* Cuts taken while a site is hard-killed must still conserve exactly: every
   term — the installed baseline included — is summed over the same live
   set, so the dead site's fragments, ledgers, and share of the expectation
   all drop out together.  The cut also has to name the dead site. *)
let test_cut_during_outage () =
  let wal_dir =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dvp-wallobs-kill-%d" (Unix.getpid ()))
    in
    Unix.mkdir dir 0o700;
    dir
  in
  let c = Dvp_runtime.Cluster.create ~seed:13 ~wal_dir ~n:3 ~items:[ (0, 900) ] () in
  let sup = Dvp_runtime.Supervisor.create c in
  Dvp_runtime.Cluster.start_bg_load c ~duration:0.6 ();
  Unix.sleepf 0.1;
  Alcotest.(check bool) "kill lands" true (Dvp_runtime.Supervisor.kill sup 1);
  let bad_during = ref 0 and saw_dead = ref false in
  for _ = 1 to 8 do
    let cut = Dvp_runtime.Cluster.sample_cut c in
    if not (Cluster.cut_ok cut) then incr bad_during;
    if cut.Cluster.cut_dead = [ 1 ] then saw_dead := true;
    Unix.sleepf 0.01
  done;
  (match Dvp_runtime.Supervisor.revive sup 1 with
  | Some replayed ->
    Alcotest.(check bool) "revival replayed the log" true (replayed > 0)
  | None -> Alcotest.fail "revive refused");
  Unix.sleepf 0.4;
  Alcotest.(check bool) "quiesced" true (Dvp_runtime.Cluster.quiesce c);
  let final_cut = Dvp_runtime.Cluster.sample_cut c in
  let conserved = Dvp_runtime.Cluster.conserved_all c in
  Dvp_runtime.Cluster.stop c;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat wal_dir f) with _ -> ())
    (Sys.readdir wal_dir);
  (try Unix.rmdir wal_dir with _ -> ());
  Alcotest.(check int) "every mid-outage cut conserved over the live set" 0
    !bad_during;
  Alcotest.(check bool) "cuts named the dead site" true !saw_dead;
  Alcotest.(check bool) "post-revival cut ok" true (Cluster.cut_ok final_cut);
  Alcotest.(check (list int)) "no dead sites at the end" [] final_cut.Cluster.cut_dead;
  Alcotest.(check bool) "conserved after recovery" true conserved

(* Concurrent cut takers must serialise, not deadlock. *)
let test_concurrent_cuts () =
  let c = Cluster.create ~seed:9 ~n:2 ~items:[ (0, 500) ] () in
  let bad = Atomic.make 0 in
  let cutters =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10 do
              let cut = Cluster.sample_cut c in
              if not (Cluster.cut_ok cut) then Atomic.incr bad
            done))
  in
  List.iter Domain.join cutters;
  Cluster.stop c;
  Alcotest.(check int) "all concurrent cuts conserved" 0 (Atomic.get bad)

(* ------------------------------------------- cut verdict fold, pure cases *)

let mk_stats ~site ?(epoch = 0) ~frag ~sent ~recv ~delta () =
  {
    Cluster.st_site = site;
    st_metrics = Metrics.create ();
    st_fragments = [ (0, frag) ];
    st_sent = [ (0, sent) ];
    st_recv = [ (0, recv) ];
    st_delta = [ (0, delta) ];
    st_outbox = 0;
    st_wal = 0;
    st_epoch = epoch;
    st_active = 0;
  }

let test_cut_fold_cases () =
  let initial = [ (0, 100) ] and items = [ 0 ] in
  (* Conserving: 40 + 55 fragments, 10 sent vs 5 accepted → 5 in flight,
     no committed deltas: 95 + 5 = 100. *)
  let ok_cut =
    Cluster.cut_of_stats ~at:1.0 ~initial ~items
      [|
        mk_stats ~site:0 ~frag:40 ~sent:10 ~recv:0 ~delta:0 ();
        mk_stats ~site:1 ~frag:55 ~sent:0 ~recv:5 ~delta:0 ();
      |]
  in
  Alcotest.(check bool) "conserving cut ok" true (Cluster.cut_ok ok_cut);
  (match ok_cut.Cluster.cut_items with
  | [ ci ] ->
    Alcotest.(check int) "in flight" 5 ci.Cluster.ci_in_flight;
    Alcotest.(check int) "expected" 100 ci.Cluster.ci_expected
  | _ -> Alcotest.fail "one item expected");
  (* Committed deltas raise the expectation: +7 committed, fragments grew. *)
  let delta_cut =
    Cluster.cut_of_stats ~at:2.0 ~initial ~items
      [|
        mk_stats ~site:0 ~frag:47 ~sent:0 ~recv:0 ~delta:7 ();
        mk_stats ~site:1 ~frag:60 ~sent:0 ~recv:0 ~delta:0 ();
      |]
  in
  Alcotest.(check bool) "delta cut ok" true (Cluster.cut_ok delta_cut);
  (* A unit of value vanished: must trip. *)
  let leak_cut =
    Cluster.cut_of_stats ~at:3.0 ~initial ~items
      [|
        mk_stats ~site:0 ~frag:40 ~sent:10 ~recv:0 ~delta:0 ();
        mk_stats ~site:1 ~frag:54 ~sent:0 ~recv:5 ~delta:0 ();
      |]
  in
  Alcotest.(check bool) "leaking cut trips" false (Cluster.cut_ok leak_cut);
  (* Sites disagreeing on the membership epoch invalidate the cut even if
     the arithmetic happens to balance. *)
  let torn_cut =
    Cluster.cut_of_stats ~at:4.0 ~initial ~items
      [|
        mk_stats ~site:0 ~epoch:0 ~frag:50 ~sent:0 ~recv:0 ~delta:0 ();
        mk_stats ~site:1 ~epoch:1 ~frag:50 ~sent:0 ~recv:0 ~delta:0 ();
      |]
  in
  Alcotest.(check bool) "epoch-torn cut invalid" false (Cluster.cut_ok torn_cut);
  Alcotest.(check bool) "epoch-torn flagged" false torn_cut.Cluster.cut_consistent

(* ------------------------------------------------ truncated dump tolerance *)

let test_spans_of_jsonl_truncated () =
  let trace = Trace.create ~capacity:4096 () in
  for k = 0 to 99 do
    Trace.emit trace ~time:(float_of_int k)
      (Trace.Txn_commit { site = k mod 4; txn = (k, 0) })
  done;
  let jsonl = Trace.to_jsonl trace in
  (* Chop mid-line, as a crash or kill would. *)
  let clipped = String.sub jsonl 0 (String.length jsonl - 17) in
  let spans = Spans.of_jsonl clipped in
  Alcotest.(check bool) "clipped dump marked incomplete" false spans.Spans.complete;
  Alcotest.(check int) "all but the torn line parsed" 99 (Spans.committed_count spans)

(* ------------------------------------------------------ observer live feed *)

let test_observer_feed () =
  let stats_out = Filename.temp_file "dvp_stats" ".jsonl" in
  let c = Cluster.create ~seed:5 ~tracing:true ~n:2 ~items:[ (0, 2_000) ] () in
  let observer = Observer.start ~every:0.05 ~stats_out ~watchdog:true c in
  let committed = Cluster.run_load c ~duration:0.25 ~item:0 () in
  Alcotest.(check bool) "quiesced" true (Cluster.quiesce c);
  Observer.stop observer;
  Alcotest.(check int) "no watchdog alarms" 0 (List.length (Observer.alarms observer));
  Alcotest.(check bool) "load ran" true (committed > 0);
  (* The telemetry registry sampled: per-site commit counters must sum to
     the metrics total by the closing sample. *)
  let series = Dvp_obs.Telemetry.series (Observer.telemetry observer) in
  Alcotest.(check bool) "telemetry series present" true (series <> []);
  let commit_total =
    List.fold_left
      (fun acc s ->
        if Filename.check_suffix s.Dvp_obs.Telemetry.s_name ".commits" then
          acc
          +. List.fold_left (fun a (_, v) -> a +. v) 0.0 s.Dvp_obs.Telemetry.points
        else acc)
      0.0 series
  in
  Alcotest.(check int) "telemetry commit windows sum to total" committed
    (int_of_float commit_total);
  (* The stats feed is valid JSONL with the expected fields. *)
  let ic = open_in stats_out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Cluster.stop c;
  Sys.remove stats_out;
  Alcotest.(check bool) "stats feed non-empty" true (!lines <> []);
  List.iter
    (fun line ->
      match Dvp_util.Json.parse line with
      | Ok j ->
        Alcotest.(check bool) "has committed field" true
          (Dvp_util.Json.member "committed" j <> None)
      | Error e -> Alcotest.fail ("stats line not JSON: " ^ e))
    !lines

(* --------------------------------------------------- Mailbox_high roundtrip *)

let test_mailbox_high_event () =
  let trace = Trace.create ~capacity:16 () in
  Trace.emit trace ~time:1.5 (Trace.Mailbox_high { site = 2; depth = 2048; limit = 1024 });
  match Trace.of_jsonl (Trace.to_jsonl trace) with
  | [ (_, Trace.Mailbox_high { site = 2; depth = 2048; limit = 1024 }) ] -> ()
  | _ -> Alcotest.fail "Mailbox_high did not survive the JSONL round trip"

let () =
  Alcotest.run "dvp_wallobs"
    [
      ("merge", [ QCheck_alcotest.to_alcotest prop_merged_total_order ]);
      ( "spans",
        [
          Alcotest.test_case "DES spans = metrics" `Quick test_des_spans_match_metrics;
          Alcotest.test_case "wall spans = metrics" `Quick test_wall_spans_match_metrics;
          Alcotest.test_case "truncated dump tolerated" `Quick
            test_spans_of_jsonl_truncated;
          Alcotest.test_case "mailbox_high roundtrip" `Quick test_mailbox_high_event;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "cuts conserve under load" `Quick
            test_cut_consistent_under_load;
          Alcotest.test_case "cuts conserve during an outage" `Quick
            test_cut_during_outage;
          Alcotest.test_case "concurrent cuts serialise" `Quick test_concurrent_cuts;
          Alcotest.test_case "cut verdict fold" `Quick test_cut_fold_cases;
        ] );
      ("observer", [ Alcotest.test_case "live feed" `Quick test_observer_feed ]);
    ]
