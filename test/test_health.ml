(* Tests for degraded-mode operation: the failure detector (lib/health),
   circuit-breaker parking of the Vm outbox, permanent site death, fragment
   evacuation, the outbox high-water warning, and crash-recovery
   idempotence. *)

module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
module Health = Dvp_health.Health
open Dvp

let quiet _ = ()

let mk_system ?(seed = 11) ?(config = Config.default) ?trace ?(n = 4)
    ?(items = [ (0, 100) ]) () =
  let sys = System.create ~seed ~config ?trace ~n () in
  List.iter (fun (item, total) -> System.add_item sys ~item ~total ()) items;
  sys

let health_config = { Config.default with Config.health = Some Health.default_config }

let state_testable = Alcotest.testable (fun ppf s -> Format.pp_print_string ppf (Health.state_to_string s)) ( = )

(* A detector config with short, round deadlines so the unit tests can
   reason about exact transition times. *)
let det_config =
  {
    Health.suspect_after = 0.5;
    condemn_after = 2.0;
    flap_penalty = 2.0;
    flap_max_scale = 8.0;
    flap_window = 5.0;
  }

(* ------------------------------------------------------- detector (unit) *)

let test_detector_transitions () =
  let engine = Engine.create () in
  let log = ref [] in
  let det =
    Health.create
      ~on_transition:(fun ~peer st -> log := (Engine.now engine, peer, st) :: !log)
      det_config ~sub:(Dvp_sim.Substrate_des.of_engine engine) ~self:0 ~n:2
  in
  Health.start det;
  Alcotest.check state_testable "initially up" Health.Up (Health.state det 1);
  (* Total silence: Suspected past suspect_after, Condemned past
     condemn_after. *)
  Engine.run_until engine 0.4;
  Alcotest.check state_testable "still up before deadline" Health.Up (Health.state det 1);
  Engine.run_until engine 1.0;
  Alcotest.check state_testable "suspected" Health.Suspected (Health.state det 1);
  Engine.run_until engine 3.0;
  Alcotest.check state_testable "condemned" Health.Condemned (Health.state det 1);
  Alcotest.(check (list int)) "condemned list" [ 1 ] (Health.condemned det);
  (* Transitions fired in order, each exactly once. *)
  let sts = List.rev_map (fun (_, _, st) -> st) !log in
  Alcotest.(check (list string)) "transition order" [ "suspected"; "condemned" ]
    (List.map Health.state_to_string sts)

let test_detector_revive_and_sticky_condemn () =
  let engine = Engine.create () in
  let det = Health.create det_config ~sub:(Dvp_sim.Substrate_des.of_engine engine) ~self:0 ~n:2 in
  Health.start det;
  Engine.run_until engine 1.0;
  Alcotest.check state_testable "suspected" Health.Suspected (Health.state det 1);
  (* A delivery revives a Suspected peer... *)
  Health.note_alive det ~peer:1;
  Alcotest.check state_testable "revived" Health.Up (Health.state det 1);
  (* ...but a Condemned one stays condemned: membership is sticky. *)
  Engine.run_until engine 5.0;
  Alcotest.check state_testable "condemned" Health.Condemned (Health.state det 1);
  Health.note_alive det ~peer:1;
  Alcotest.check state_testable "note_alive ignored" Health.Condemned (Health.state det 1);
  (* Only the operator override undoes it. *)
  Health.reinstate det ~peer:1;
  Alcotest.check state_testable "reinstated" Health.Up (Health.state det 1);
  Health.note_alive det ~peer:1;
  Engine.run_until engine 5.4;
  Alcotest.check state_testable "fresh deadline after reinstate" Health.Up (Health.state det 1)

let test_detector_flap_hysteresis () =
  let engine = Engine.create () in
  let det = Health.create det_config ~sub:(Dvp_sim.Substrate_des.of_engine engine) ~self:0 ~n:2 in
  Health.start det;
  (* First flap: suspected at ~0.5 s of silence, then revived. *)
  Engine.run_until engine 1.0;
  Alcotest.check state_testable "suspected once" Health.Suspected (Health.state det 1);
  Health.note_alive det ~peer:1;
  (* The penalty doubles the suspicion timeout: 0.7 s of silence is past the
     base deadline but NOT past the scaled one... *)
  Engine.run_until engine 1.7;
  Alcotest.check state_testable "hysteresis holds" Health.Up (Health.state det 1);
  (* ...while 1.1 s of silence is. *)
  Engine.run_until engine 2.2;
  Alcotest.check state_testable "re-suspected eventually" Health.Suspected (Health.state det 1)

let test_detector_probes_idle_peer () =
  let engine = Engine.create () in
  let probes = ref [] in
  let det =
    Health.create
      ~send_probe:(fun peer -> probes := (Engine.now engine, peer) :: !probes)
      det_config ~sub:(Dvp_sim.Substrate_des.of_engine engine) ~self:0 ~n:3
  in
  Health.start det;
  (* Keep peer 1 chatty; leave peer 2 idle.  Only the idle one should be
     probed. *)
  let rec chat () =
    Health.note_alive det ~peer:1;
    ignore (Engine.schedule engine ~delay:0.1 chat)
  in
  chat ();
  Engine.run_until engine 0.45;
  let probed p = List.exists (fun (_, q) -> q = p) !probes in
  Alcotest.(check bool) "idle peer probed" true (probed 2);
  Alcotest.(check bool) "chatty peer not probed" false (probed 1)

let test_detector_pause_resume () =
  let engine = Engine.create () in
  let det = Health.create det_config ~sub:(Dvp_sim.Substrate_des.of_engine engine) ~self:0 ~n:2 in
  Health.start det;
  Engine.run_until engine 0.2;
  (* Down across the whole condemnation window: a paused detector must not
     judge anyone for its own silence. *)
  Health.pause det;
  Engine.run_until engine 4.0;
  Alcotest.check state_testable "no verdicts while paused" Health.Up (Health.state det 1);
  Health.resume det;
  (* Deadlines were refreshed at resume: the peer is only suspected a full
     suspect_after later. *)
  Engine.run_until engine 4.3;
  Alcotest.check state_testable "fresh deadline after resume" Health.Up (Health.state det 1);
  Engine.run_until engine 5.0;
  Alcotest.check state_testable "suspected after fresh silence" Health.Suspected
    (Health.state det 1)

(* --------------------------------------------- system-level detection *)

let test_system_detects_dead_site () =
  let trace = Trace.create () in
  let sys = mk_system ~config:health_config ~trace () in
  System.crash_site sys 3;
  System.run_until sys 2.0;
  (* Every survivor suspects the dead site; nobody suspects a live one. *)
  for p = 0 to 2 do
    Alcotest.check state_testable "survivor suspects dead site" Health.Suspected
      (System.health_state sys ~observer:p ~peer:3);
    for q = 0 to 2 do
      if p <> q then
        Alcotest.check state_testable "live peers stay up" Health.Up
          (System.health_state sys ~observer:p ~peer:q)
    done
  done;
  System.run_until sys 6.0;
  Alcotest.check state_testable "condemned after condemn_after" Health.Condemned
    (System.health_state sys ~observer:0 ~peer:3);
  (* The verdicts were traced. *)
  let health_events =
    Trace.count_events trace ~f:(function Trace.Health _ -> true | _ -> false)
  in
  Alcotest.(check bool) "health transitions traced" true (health_events > 0)

(* Satellite: a Suspected site that comes back gets its breaker reset —
   parked Vm value flows again within one retransmit window. *)
let test_flap_reup_resumes_retransmission () =
  let sys = mk_system ~config:health_config () in
  System.crash_site sys 1;
  (* Value headed for the dead site: debited at 0, parked in its outbox. *)
  Alcotest.(check bool) "push accepted" true
    (Site.push_value (System.site sys 0) ~dst:1 ~item:0 ~amount:10);
  (* Down for 2 s — long enough to suspect (0.5 s), well short of the 4 s
     condemnation. *)
  System.run_until sys 2.0;
  Alcotest.check state_testable "suspected while down" Health.Suspected
    (System.health_state sys ~observer:0 ~peer:1);
  Alcotest.(check int) "vm parked, not lost" 10 (System.in_flight sys ~item:0);
  System.recover_site sys 1;
  (* Re-up resets the breaker and backoff: the parked backlog must land
     within one retransmit window (0.15 s), not after a full backed-off
     timeout.  One extra window of slack covers ack round-trips. *)
  System.run_until sys (System.now sys +. 0.3);
  Alcotest.check state_testable "up again" Health.Up
    (System.health_state sys ~observer:0 ~peer:1);
  Alcotest.(check int) "parked value delivered" 35
    (Site.fragment (System.site sys 1) ~item:0);
  Alcotest.(check int) "nothing in flight" 0 (System.in_flight sys ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved_all sys)

(* ------------------------------------------------- permanent death *)

let test_kill_forever_recover_noop () =
  let sys = mk_system ~config:health_config () in
  System.kill_forever sys 2;
  Alcotest.(check bool) "down" false (System.site_up sys 2);
  Alcotest.(check bool) "dead forever" true (System.dead_forever sys 2);
  System.recover_site sys 2;
  Alcotest.(check bool) "recover is a no-op" false (System.site_up sys 2);
  System.run_until sys 1.0;
  Alcotest.(check bool) "still down" false (System.site_up sys 2)

(* ------------------------------------------------------- evacuation *)

let test_evacuate_conserves () =
  let sys = mk_system ~config:health_config ~items:[ (0, 120); (1, 60) ] () in
  System.kill_forever sys 3;
  (* Refused until the survivors have condemned the site... *)
  System.run_until sys 1.0;
  (match System.evacuate sys ~site:3 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "evacuation accepted before condemnation");
  (* ...and never for a live site, even with ~force. *)
  (match System.evacuate ~force:true sys ~site:0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "evacuated a live site");
  System.run_until sys 6.0;
  Alcotest.check state_testable "condemned" Health.Condemned
    (System.health_state sys ~observer:0 ~peer:3);
  (match System.evacuate sys ~site:3 () with
  | Error e -> Alcotest.failf "evacuation refused: %s" e
  | Ok r ->
    Alcotest.(check int) "evacuated site" 3 r.System.evac_site;
    (* The dead site held 30 of item 0 and 15 of item 1. *)
    Alcotest.(check int) "all value re-homed" 45 r.System.value_moved;
    Alcotest.(check int) "nothing stranded" 0 r.System.stranded);
  Alcotest.(check bool) "marked evacuated" true (System.evacuated sys 3);
  (* The fragments now live entirely on the survivors. *)
  List.iter
    (fun item ->
      let frags = System.fragments sys ~item in
      Alcotest.(check int) "dead site emptied" 0 frags.(3))
    [ 0; 1 ];
  Alcotest.(check int) "item 0 total intact" 120 (System.total_at_sites sys ~item:0);
  Alcotest.(check int) "item 1 total intact" 60 (System.total_at_sites sys ~item:1);
  Alcotest.(check bool) "conserved through evacuation" true (System.conserved_all sys);
  (* The system stays serviceable: new work on the evacuated items commits. *)
  let result = ref None in
  System.exec sys
    (Txn.write ~site:0 [ (0, Op.Decr 50) ])
    ~on_done:(fun r -> result := Some r);
  System.run_until sys (System.now sys +. 3.0);
  (match !result with
  | Some (Txn.Committed _) -> ()
  | _ -> Alcotest.fail "post-evacuation transaction did not commit");
  Alcotest.(check bool) "still conserved" true (System.conserved_all sys)

let test_auto_evacuate () =
  let config = { health_config with Config.auto_evacuate = true } in
  let sys = mk_system ~config ~items:[ (0, 120) ] () in
  System.kill_forever sys 1;
  (* Past condemn_after (4 s) plus scan slack, the system must have
     evacuated on its own. *)
  System.run_until sys 7.0;
  Alcotest.(check bool) "auto-evacuated" true (System.evacuated sys 1);
  Alcotest.(check int) "dead site emptied" 0 (System.fragments sys ~item:0).(1);
  Alcotest.(check int) "total intact" 120 (System.total_at_sites sys ~item:0);
  Alcotest.(check bool) "conserved" true (System.conserved_all sys)

(* ---------------------------------------------------- outbox high-water *)

let test_outbox_high_one_shot () =
  let trace = Trace.create () in
  let config = { health_config with Config.vm_outbox_warn = 5 } in
  let sys = mk_system ~config ~trace ~items:[ (0, 100) ] () in
  System.crash_site sys 1;
  (* Pile Vm onto the dead destination: the depth crosses the mark once,
     keeps growing, and must warn exactly once. *)
  for _ = 1 to 9 do
    ignore (Site.push_value (System.site sys 0) ~dst:1 ~item:0 ~amount:1);
    System.run_until sys (System.now sys +. 0.05)
  done;
  let warnings =
    Trace.count_events trace ~f:(function Trace.Outbox_high _ -> true | _ -> false)
  in
  Alcotest.(check int) "one-shot warning" 1 warnings;
  Alcotest.(check bool) "depth really is past the mark" true
    (Vm.outbox_depth (Site.vm (System.site sys 0)) > 5)

(* ------------------------------------------- recovery idempotence (prop) *)

(* Satellite: recovery is a pure function of the stable log.  Crashing a
   site again immediately after recovery (before it does any new work — the
   "second crash mid-recovery" schedule) and recovering once more must land
   it in exactly the same state. *)
let prop_recover_idempotent =
  QCheck.Test.make ~count:30 ~name:"Site.recover idempotent under re-crash"
    QCheck.(int_bound 9999)
    (fun seed ->
      let sys = mk_system ~seed ~items:[ (0, 200); (1, 80) ] () in
      let rng = Dvp_util.Rng.create (seed + 1) in
      (* A random burst of cross-site work so the victim's log holds a mix of
         local updates, Vm sends, and Vm accepts. *)
      for _ = 1 to 20 do
        let site = Dvp_util.Rng.int rng 4 in
        let item = Dvp_util.Rng.int rng 2 in
        let amount = 1 + Dvp_util.Rng.int rng 30 in
        let op = if Dvp_util.Rng.int rng 2 = 0 then Op.Incr amount else Op.Decr amount in
        System.exec sys (Txn.write ~site [ (item, op) ]) ~on_done:quiet
      done;
      System.run_until sys 1.0;
      let victim = Dvp_util.Rng.int rng 4 in
      let site = System.site sys victim in
      System.crash_site sys victim;
      System.recover_site sys victim;
      let snapshot () =
        ( List.map (fun item -> (item, Site.fragment site ~item)) (Site.items site),
          List.init 4 (fun p -> Site.stable_accepted_upto site ~peer:p),
          List.init 4 (fun p -> Vm.outstanding_to (Site.vm site) p),
          Vm.outbox_depth (Site.vm site) )
      in
      let first = snapshot () in
      (* Crash again before any new event reaches the site, recover again:
         same log, so necessarily the same state. *)
      System.crash_site sys victim;
      System.recover_site sys victim;
      let second = snapshot () in
      first = second && System.conserved_all sys)

let () =
  Alcotest.run "dvp_health"
    [
      ( "detector",
        [
          Alcotest.test_case "silence transitions" `Quick test_detector_transitions;
          Alcotest.test_case "revive + sticky condemn" `Quick
            test_detector_revive_and_sticky_condemn;
          Alcotest.test_case "flap hysteresis" `Quick test_detector_flap_hysteresis;
          Alcotest.test_case "probes idle peers" `Quick test_detector_probes_idle_peer;
          Alcotest.test_case "pause/resume" `Quick test_detector_pause_resume;
        ] );
      ( "system",
        [
          Alcotest.test_case "detects dead site" `Quick test_system_detects_dead_site;
          Alcotest.test_case "re-up resets breaker" `Quick
            test_flap_reup_resumes_retransmission;
          Alcotest.test_case "kill_forever sticks" `Quick test_kill_forever_recover_noop;
          Alcotest.test_case "outbox high-water one-shot" `Quick test_outbox_high_one_shot;
        ] );
      ( "evacuation",
        [
          Alcotest.test_case "evacuate conserves" `Quick test_evacuate_conserves;
          Alcotest.test_case "auto-evacuate" `Quick test_auto_evacuate;
        ] );
      ( "recovery",
        [ QCheck_alcotest.to_alcotest prop_recover_idempotent ] );
    ]
