(* The substrate contract, tested from both sides:

   - the DES substrate is deterministic: two runs of the same seeded workload
     produce byte-identical JSONL traces;
   - the two substrates agree: a commutative workload (increments plus
     budget-bounded explicit redistributions) commits the same transaction
     set and settles on the same final fragment vectors whether the sites
     share one simulated clock or run one-per-domain on the wall clock. *)

module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
open Dvp

(* ------------------------------------------------------ DES determinism *)

(* A workload with enough variety to touch timers, Vm retransmission and the
   request protocol: concentrated quotas force cross-site pulls. *)
let traced_run ?queue () =
  let trace = Trace.create ~capacity:65_536 () in
  let sys = System.create ~seed:77 ~trace ?queue ~n:4 () in
  System.add_item sys ~item:0 ~total:120 ~split:(`Explicit [ 90; 10; 10; 10 ]) ();
  System.add_item sys ~item:1 ~total:80 ();
  for i = 0 to 11 do
    let site = i mod 4 in
    ignore
      (Substrate.schedule_at (System.sub sys)
         ~at:(0.3 *. float_of_int i)
         (fun () ->
           System.exec sys
             (Txn.with_retry ~retries:3 ~backoff:0.1
                (Txn.write ~site [ (i mod 2, Op.Decr (10 + i)) ]))
             ~on_done:ignore))
  done;
  System.run_until sys 30.0;
  Alcotest.(check bool) "conserved" true (System.conserved_all sys);
  Trace.to_jsonl trace

let test_des_determinism () =
  let a = traced_run () in
  let b = traced_run () in
  Alcotest.(check bool) "trace non-trivial" true (String.length a > 1000);
  Alcotest.(check string) "byte-identical traces" a b

(* The engine-swap regression: the timer wheel (default) and the reference
   binary heap implement the same total event order, so the same seeded
   workload must trace byte-identically on either queue. *)
let test_des_engine_swap () =
  let wheel = traced_run ~queue:`Wheel () in
  let heap = traced_run ~queue:`Heap_reference () in
  Alcotest.(check bool) "trace non-trivial" true (String.length wheel > 1000);
  Alcotest.(check string) "wheel and heap traces byte-identical" wheel heap

(* ------------------------------------------- cross-substrate equivalence *)

(* Commutative script actions.  [Incr] always commits, locally and
   synchronously, on both substrates.  [Push] amounts are clamped against a
   per-(site, item) budget equal to the site's initial fragment, so every
   debit succeeds no matter how the substrate interleaves the credits.  The
   final fragment vector is then a pure function of the script. *)
type action =
  | Incr of int * int * int (* site, item, amount *)
  | Push of int * int * int * int (* src, dst, item, amount *)

let n_sites = 3

let items = [ (0, 60); (1, 31) ]

let initial_fragment ~site ~item =
  let total = List.assoc item items in
  List.nth (Value.split_even total ~parts:n_sites) site

(* Clamp pushes against the running budget; drop the ones that clamp to
   zero.  Done on the script, before either substrate runs, so both run the
   same effective action list. *)
let clamp_script script =
  let budget = Hashtbl.create 16 in
  List.iter
    (fun (item, _) ->
      for s = 0 to n_sites - 1 do
        Hashtbl.replace budget (s, item) (initial_fragment ~site:s ~item)
      done)
    items;
  List.filter_map
    (function
      | Incr _ as a -> Some a
      | Push (src, dst, item, amount) ->
        let left = Hashtbl.find budget (src, item) in
        let amount = min amount left in
        if amount <= 0 || src = dst then None
        else begin
          Hashtbl.replace budget (src, item) (left - amount);
          Some (Push (src, dst, item, amount))
        end)
    script

(* The oracle: final fragments as arithmetic on the effective script. *)
let predicted_fragments script =
  List.map
    (fun (item, _) ->
      ( item,
        List.init n_sites (fun s ->
            List.fold_left
              (fun acc -> function
                | Incr (site, i, a) when site = s && i = item -> acc + a
                | Push (src, dst, i, a) when i = item ->
                  acc + (if dst = s then a else 0) - if src = s then a else 0
                | _ -> acc)
              (initial_fragment ~site:s ~item)
              script) ))
    items

let run_des script =
  let sys = System.create ~seed:5 ~n:n_sites () in
  List.iter (fun (item, total) -> System.add_item sys ~item ~total ()) items;
  let committed = ref 0 in
  List.iter
    (function
      | Incr (site, item, amount) ->
        System.exec sys
          (Txn.write ~site [ (item, Op.Incr amount) ])
          ~on_done:(fun o -> if Txn.committed o then incr committed)
      | Push (src, dst, item, amount) ->
        let ok = Site.push_value (System.site sys src) ~dst ~item ~amount in
        Alcotest.(check bool) "des push debits" true ok)
    script;
  System.run_until sys 120.0;
  Alcotest.(check bool) "des conserved" true (System.conserved_all sys);
  let frags =
    List.map (fun (item, _) -> (item, Array.to_list (System.fragments sys ~item))) items
  in
  (!committed, frags)

let run_cluster script =
  let c = Cluster.create ~seed:5 ~n:n_sites ~items () in
  let committed = ref 0 in
  List.iter
    (function
      | Incr (site, item, amount) ->
        (match Cluster.exec c (Txn.write ~site [ (item, Op.Incr amount) ]) with
        | Txn.Committed _ -> incr committed
        | Txn.Aborted _ -> ())
      | Push (src, dst, item, amount) ->
        let ok = Cluster.push_value c ~src ~dst ~item ~amount in
        Alcotest.(check bool) "cluster push debits" true ok)
    script;
  Alcotest.(check bool) "cluster quiesces" true (Cluster.quiesce c);
  let conserved = Cluster.conserved_all c in
  let frags =
    List.map
      (fun (item, _) -> (item, Array.to_list (Cluster.fragments c ~item)))
      items
  in
  Cluster.stop c;
  Alcotest.(check bool) "cluster conserved" true conserved;
  (!committed, frags)

let action_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun site item amount -> Incr (site, item, amount))
            (int_range 0 (n_sites - 1))
            (int_range 0 1) (int_range 1 9) );
        ( 2,
          map3
            (fun (src, dst) item amount -> Push (src, dst, item, amount))
            (pair (int_range 0 (n_sites - 1)) (int_range 0 (n_sites - 1)))
            (int_range 0 1) (int_range 1 15) );
      ])

let script_arb =
  QCheck.make
    ~print:(fun s ->
      String.concat "; "
        (List.map
           (function
             | Incr (s, i, a) -> Printf.sprintf "incr s%d i%d +%d" s i a
             | Push (s, d, i, a) -> Printf.sprintf "push s%d->s%d i%d %d" s d i a)
           s))
    QCheck.Gen.(list_size (int_range 0 24) action_gen)

let equivalence_prop script =
  let script = clamp_script script in
  let des_committed, des_frags = run_des script in
  let cl_committed, cl_frags = run_cluster script in
  let predicted = predicted_fragments script in
  des_committed = cl_committed && des_frags = cl_frags && des_frags = predicted

let test_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"DES and domains agree on commutative scripts"
       script_arb equivalence_prop)

(* ------------------------------------------- crash-restart conservation *)

(* The same commutative scripts, but the cluster gets hard-killed along the
   way: after each third of the script one site's domain dies mid-traffic
   (its WAL tail torn on every other kill), is revived from its on-disk log,
   and the run continues.  The final fragment vector must still match the
   pure arithmetic oracle — recovery may lose no committed value and invent
   none — and every revival must provably replay the stable log. *)
let crash_restart_prop script =
  let script = clamp_script script in
  let wal_dir =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dvp-sub-crash-%d-%d" (Unix.getpid ()) (Random.bits ()))
    in
    Unix.mkdir dir 0o700;
    dir
  in
  let c = Cluster.create ~seed:5 ~wal_dir ~n:n_sites ~items () in
  let sup = Supervisor.create c in
  let committed = ref 0 in
  let replays_ok = ref true in
  let phase = max 1 ((List.length script + 2) / 3) in
  List.iteri
    (fun idx a ->
      (match a with
      | Incr (site, item, amount) ->
        (match Cluster.exec c (Txn.write ~site [ (item, Op.Incr amount) ]) with
        | Txn.Committed _ -> incr committed
        | Txn.Aborted _ -> ())
      | Push (src, dst, item, amount) ->
        ignore (Cluster.push_value c ~src ~dst ~item ~amount));
      if (idx + 1) mod phase = 0 then begin
        let victim = (idx / phase) mod n_sites in
        if Supervisor.kill sup victim then begin
          (* Alternate clean kills with torn-tail kills so both respawn
             paths run. *)
          (if idx mod 2 = 0 then
             match Cluster.wal_path c victim with
             | Some path -> Dvp_runtime.Walfile.tear path ~junk:29
             | None -> ());
          match Supervisor.revive sup victim with
          | Some replayed -> if replayed = 0 then replays_ok := false
          | None -> replays_ok := false
        end
      end)
    script;
  let quiesced = Cluster.quiesce c in
  let conserved = Cluster.conserved_all c in
  let frags =
    List.map (fun (item, _) -> (item, Array.to_list (Cluster.fragments c ~item))) items
  in
  Cluster.stop c;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat wal_dir f) with _ -> ())
    (Sys.readdir wal_dir);
  (try Unix.rmdir wal_dir with _ -> ());
  (* Every Incr commits on a live site and kills happen between client
     calls, so the full script survives into the oracle. *)
  !replays_ok && quiesced && conserved
  && !committed
     = List.length (List.filter (function Incr _ -> true | _ -> false) script)
  && frags = predicted_fragments script

let test_crash_restart =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8
       ~name:"kill/recover mid-script preserves the fragment oracle" script_arb
       crash_restart_prop)

(* One fixed, busier script as a plain test so a regression names itself
   even if the random seed moves. *)
let test_equivalence_fixed () =
  let script =
    clamp_script
      [
        Incr (0, 0, 5);
        Push (0, 2, 0, 9);
        Incr (2, 1, 3);
        Push (1, 0, 1, 8);
        Incr (1, 0, 7);
        Push (2, 1, 0, 12);
        Push (0, 1, 1, 4);
        Incr (2, 0, 2);
      ]
  in
  let des = run_des script in
  let cluster = run_cluster script in
  Alcotest.(check (pair int (list (pair int (list int)))))
    "same committed count and fragment vectors" des cluster;
  Alcotest.(check (list (pair int (list int))))
    "matches the arithmetic oracle" (predicted_fragments script) (snd des)

let () =
  Alcotest.run "dvp_substrate"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical traces" `Quick test_des_determinism;
          Alcotest.test_case "engine swap (wheel vs heap)" `Quick
            test_des_engine_swap;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed script" `Quick test_equivalence_fixed;
          test_equivalence;
        ] );
      ("crash-restart", [ test_crash_restart ]);
    ]
