(* Tests for lib/obs: span reconstruction, telemetry time-series, and the
   crash flight recorder — plus the trace/metrics satellites that feed them
   (JSONL meta header, Metrics.trace_dropped, Probe.sample_now). *)

module Json = Dvp_util.Json
module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
module Probe = Dvp_sim.Probe
module Spans = Dvp_obs.Spans
module Telemetry = Dvp_obs.Telemetry
module Flight = Dvp_obs.Flight

(* ------------------------------------------------- JSON round-trip (prop) *)

(* A generator covering every event constructor with randomized fields, so
   the JSONL round-trip is checked property-style rather than on one
   hand-picked example per constructor. *)
let event_gen =
  let open QCheck.Gen in
  let site = int_bound 7 in
  let ts = pair (int_bound 999) (int_bound 7) in
  let item = int_bound 9 in
  let amount = int_bound 500 in
  let seq = int_bound 99 in
  let str = oneofl [ "timeout"; "lock-busy"; "stale ts"; "torn"; "cc reject" ] in
  oneof
    [
      map3 (fun s t n -> Trace.Txn_begin { site = s; txn = t; n_ops = n }) site ts (int_bound 6);
      map2 (fun s t -> Trace.Txn_commit { site = s; txn = t }) site ts;
      map3 (fun s t r -> Trace.Txn_abort { site = s; txn = t; reason = r }) site ts str;
      map3
        (fun (s, d) q (i, a) -> Trace.Vm_created { site = s; dst = d; seq = q; item = i; amount = a })
        (pair site site) seq (pair item amount);
      map3
        (fun (s, d) q (i, a) -> Trace.Vm_accepted { site = s; src = d; seq = q; item = i; amount = a })
        (pair site site) seq (pair item amount);
      map3
        (fun (s, d) q (i, a) ->
          Trace.Vm_retransmit { site = s; dst = d; seq = q; item = i; amount = a })
        (pair site site) seq (pair item amount);
      map3 (fun s p q -> Trace.Vm_dup { site = s; src = p; seq = q }) site site seq;
      map3
        (fun s t is -> Trace.Lock_acquire { site = s; txn = t; items = is })
        site ts
        (list_size (int_bound 4) item);
      map2 (fun s t -> Trace.Lock_release { site = s; txn = t }) site ts;
      map3
        (fun (s, d) t (i, a) -> Trace.Request_sent { site = s; dst = d; txn = t; item = i; amount = a })
        (pair site site) ts (pair item amount);
      map3
        (fun (s, p) t (i, a) ->
          Trace.Request_honored { site = s; src = p; txn = t; item = i; amount = a })
        (pair site site) ts (pair item amount);
      map3
        (fun (s, p) t (i, r) ->
          Trace.Request_ignored { site = s; src = p; txn = t; item = i; reason = r })
        (pair site site) ts (pair item str);
      map (fun s -> Trace.Crash { site = s }) site;
      map2 (fun s r -> Trace.Recover { site = s; redo = r }) site (int_bound 50);
      map2 (fun s l -> Trace.Checkpoint { site = s; log_length = l }) site (int_bound 100);
      map2 (fun s k -> Trace.Storage_fault { site = s; kind = k }) site str;
      map2 (fun s d -> Trace.Wal_repair { site = s; dropped = d }) site (int_bound 5);
      map2 (fun s d -> Trace.Net_send { src = s; dst = d }) site site;
      map2 (fun s d -> Trace.Net_drop { src = s; dst = d }) site site;
      map3
        (fun s p st -> Trace.Health { site = s; peer = p; state = st })
        site site
        (oneofl [ "up"; "suspected"; "condemned" ]);
      map3
        (fun s v (d, r) -> Trace.Evacuation { site = s; value_moved = v; vms_delivered = d; stranded = r })
        site amount
        (pair (int_bound 40) (int_bound 8));
      map3
        (fun s d l -> Trace.Outbox_high { site = s; depth = d; limit = l })
        site (int_bound 500) (int_bound 200);
      map3
        (fun s d l -> Trace.Mailbox_high { site = s; depth = d; limit = l })
        site (int_bound 500) (int_bound 200);
      map3
        (fun s e d -> Trace.Join { site = s; epoch = e; seeded = d })
        site (int_bound 9) amount;
      map3 (fun s e d -> Trace.Leave { site = s; epoch = e; shed = d }) site (int_bound 9) amount;
      map (fun m -> Trace.Rebalance { moved = m }) amount;
      map2 (fun c m -> Trace.Note { category = c; message = m }) str str;
    ]

let prop_event_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"event_of_json inverts event_to_json"
    (QCheck.make
       QCheck.Gen.(pair (map (fun n -> float_of_int n /. 1000.0) (int_bound 100_000)) event_gen))
    (fun (time, ev) ->
      match Trace.event_of_json (Trace.event_to_json ~time ev) with
      | Some (t2, e2) -> Float.abs (t2 -. time) < 1e-9 && e2 = ev
      | None -> false)

(* ------------------------------------------------------------ JSONL meta *)

let test_jsonl_meta () =
  let tr = Trace.create ~capacity:8 () in
  for i = 1 to 12 do
    Trace.emit tr ~time:(float_of_int i) (Trace.Crash { site = i })
  done;
  let dump = Trace.to_jsonl tr in
  (match Trace.meta_of_jsonl dump with
  | Some m ->
    Alcotest.(check int) "meta events" 8 m.Trace.events;
    Alcotest.(check int) "meta dropped" 4 m.Trace.dropped;
    Alcotest.(check int) "meta capacity" 8 m.Trace.capacity
  | None -> Alcotest.fail "no meta header in JSONL dump");
  (* The header must not confuse the event parser. *)
  Alcotest.(check int) "events still parse" 8 (List.length (Trace.of_jsonl dump));
  Alcotest.(check bool) "headerless dump has no meta" true
    (Trace.meta_of_jsonl "{\"time\":1.0,\"type\":\"crash\",\"site\":0}\n" = None)

let test_metrics_trace_dropped () =
  let m = Dvp.Metrics.create () in
  Alcotest.(check int) "starts at 0" 0 (Dvp.Metrics.trace_dropped m);
  Dvp.Metrics.set_trace_dropped m 17;
  Alcotest.(check int) "set" 17 (Dvp.Metrics.trace_dropped m);
  match Json.member "trace_dropped" (Dvp.Metrics.to_json m) with
  | Some (Json.Int 17) -> ()
  | _ -> Alcotest.fail "trace_dropped missing from Metrics.to_json"

(* ------------------------------------------------------- Probe.sample_now *)

let test_probe_sample_now () =
  let engine = Engine.create () in
  let p = Probe.start engine ~period:1.0 ~sample:(fun now -> now) in
  Engine.run_until engine 2.5;
  Alcotest.(check int) "periodic samples" 2 (Probe.length p);
  Probe.sample_now p;
  Probe.stop p;
  Alcotest.(check int) "final sample added" 3 (Probe.length p);
  match List.rev (Probe.series p) with
  | (t, v) :: _ ->
    Alcotest.(check (float 1e-9)) "final sample at now" 2.5 t;
    Alcotest.(check (float 1e-9)) "sampler saw now" 2.5 v
  | [] -> Alcotest.fail "empty series"

(* ------------------------------------------------------------------ spans *)

let ts0 : Trace.ts = (1, 0)

let test_span_commit () =
  let events =
    [
      (0.0, Trace.Txn_begin { site = 0; txn = ts0; n_ops = 2 });
      (0.1, Trace.Lock_acquire { site = 0; txn = ts0; items = [ 0 ] });
      (0.2, Trace.Request_sent { site = 0; dst = 1; txn = ts0; item = 0; amount = 5 });
      (0.5, Trace.Request_honored { site = 1; src = 0; txn = ts0; item = 0; amount = 5 });
      (1.0, Trace.Txn_commit { site = 0; txn = ts0 });
      (1.1, Trace.Lock_release { site = 0; txn = ts0 });
    ]
  in
  let t = Spans.of_events events in
  Alcotest.(check bool) "complete" true t.Spans.complete;
  Alcotest.(check int) "one txn" 1 (List.length t.Spans.txns);
  Alcotest.(check int) "committed" 1 (Spans.committed_count t);
  let s = List.hd t.Spans.txns in
  Alcotest.(check bool) "outcome" true (s.Spans.outcome = Spans.Committed);
  let near label expected = function
    | Some v -> Alcotest.(check (float 1e-9)) label expected v
    | None -> Alcotest.fail (label ^ ": missing")
  in
  near "lock wait" 0.1 (Spans.lock_wait s);
  near "request wait" 0.3 (Spans.request_wait s);
  near "duration" 1.0 (Spans.span_duration s);
  Alcotest.(check int) "requests" 1 s.Spans.requests;
  Alcotest.(check int) "honored" 1 s.Spans.honored

let test_span_abort () =
  let events =
    [
      (0.0, Trace.Txn_begin { site = 2; txn = (7, 2); n_ops = 1 });
      (0.4, Trace.Txn_abort { site = 2; txn = (7, 2); reason = "timeout" });
    ]
  in
  let t = Spans.of_events events in
  Alcotest.(check int) "aborted" 1 (Spans.aborted_count t);
  Alcotest.(check bool) "reason tally" true (Spans.abort_reasons t = [ ("timeout", 1) ]);
  match (List.hd t.Spans.txns).Spans.outcome with
  | Spans.Aborted r -> Alcotest.(check string) "reason" "timeout" r
  | _ -> Alcotest.fail "expected abort outcome"

let test_span_crash_interrupted () =
  let events =
    [
      (0.0, Trace.Txn_begin { site = 1; txn = (3, 1); n_ops = 1 });
      (0.2, Trace.Lock_acquire { site = 1; txn = (3, 1); items = [ 0 ] });
      (0.3, Trace.Crash { site = 1 });
    ]
  in
  let t = Spans.of_events events in
  Alcotest.(check int) "unfinished" 1 (Spans.unfinished_count t);
  let s = List.hd t.Spans.txns in
  Alcotest.(check bool) "no end" true (s.Spans.end_at = None);
  Alcotest.(check bool) "outcome unfinished" true (s.Spans.outcome = Spans.Unfinished)

let test_span_vm_chain () =
  let events =
    [
      (0.0, Trace.Vm_created { site = 0; dst = 1; seq = 5; item = 0; amount = 9 });
      (0.5, Trace.Vm_retransmit { site = 0; dst = 1; seq = 5; item = 0; amount = 9 });
      (1.0, Trace.Vm_retransmit { site = 0; dst = 1; seq = 5; item = 0; amount = 9 });
      (1.2, Trace.Vm_accepted { site = 1; src = 0; seq = 5; item = 0; amount = 9 });
      (1.4, Trace.Vm_dup { site = 1; src = 0; seq = 5 });
      (* A second Vm that never arrives stays in flight. *)
      (2.0, Trace.Vm_created { site = 0; dst = 2; seq = 6; item = 0; amount = 4 });
    ]
  in
  let t = Spans.of_events events in
  Alcotest.(check int) "two lifecycles" 2 (List.length t.Spans.vms);
  Alcotest.(check int) "one in flight" 1 (Spans.vm_in_flight t);
  let v = List.hd t.Spans.vms in
  Alcotest.(check int) "retransmits" 2 v.Spans.retransmits;
  Alcotest.(check int) "dups" 1 v.Spans.dups;
  (match Spans.delivery_delay v with
  | Some d -> Alcotest.(check (float 1e-9)) "delivery delay" 1.2 d
  | None -> Alcotest.fail "expected delivery delay");
  (* Lifecycles must survive the JSON export (the analyze --json surface). *)
  match Json.member "vm_lifecycles" (Spans.to_json t) with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "vm_lifecycles missing from Spans.to_json"

let test_span_clipped_trace () =
  let t =
    Spans.of_events ~dropped:7 [ (0.0, Trace.Txn_begin { site = 0; txn = ts0; n_ops = 1 }) ]
  in
  Alcotest.(check bool) "not complete" false t.Spans.complete;
  (match Json.member "complete" (Spans.to_json t) with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "complete flag missing");
  let summary = Format.asprintf "%a" Spans.pp_summary t in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "summary warns about clipping" true (contains summary "WARNING")

(* --------------------------------------------------------------- telemetry *)

let test_telemetry_windows () =
  let engine = Engine.create () in
  let hits = ref 0 in
  let tel = Telemetry.create () in
  Telemetry.counter tel "hits" (fun () -> float_of_int !hits);
  Telemetry.gauge tel "level" (fun () -> float_of_int (10 * !hits));
  (* One hit every 0.3 s; sampled every 1 s. *)
  let rec tick () =
    incr hits;
    ignore (Engine.schedule engine ~delay:0.3 tick)
  in
  ignore (Engine.schedule engine ~delay:0.3 tick);
  Telemetry.attach tel engine ~period:1.0;
  Engine.run_until engine 2.5;
  Telemetry.stop tel;
  let series = Telemetry.series tel in
  Alcotest.(check int) "two series" 2 (List.length series);
  let counter = List.find (fun s -> s.Telemetry.s_name = "hits") series in
  let gauge = List.find (fun s -> s.Telemetry.s_name = "level") series in
  (* Periodic samples at 1.0 and 2.0, plus the final sample at 2.5. *)
  Alcotest.(check int) "windows include final sample" 3 (List.length counter.Telemetry.points);
  (match List.rev counter.Telemetry.points with
  | (t, _) :: _ -> Alcotest.(check (float 1e-9)) "final window at stop time" 2.5 t
  | [] -> Alcotest.fail "no points");
  (* Counter windows are increments: they must sum to the cumulative total. *)
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 counter.Telemetry.points in
  Alcotest.(check (float 1e-9)) "deltas sum to total" (float_of_int !hits) total;
  (* Gauge points are raw readings, not deltas. *)
  (match gauge.Telemetry.points with
  | (_, v) :: _ -> Alcotest.(check (float 1e-9)) "gauge reads raw value" 30.0 v
  | [] -> Alcotest.fail "no gauge points");
  match Telemetry.snapshot tel with
  | Json.Obj fields -> Alcotest.(check int) "snapshot covers instruments" 2 (List.length fields)
  | _ -> Alcotest.fail "snapshot not an object"

(* ---------------------------------------------------------- flight recorder *)

let test_flight_dump_reload () =
  let tr = Trace.create ~capacity:4 () in
  List.iter
    (fun i -> Trace.emit tr ~time:(float_of_int i) (Trace.Crash { site = i }))
    [ 1; 2; 3; 4; 5; 6 ];
  let fl = Flight.create ~dir:"obs_test_artifacts/crashdumps" tr in
  Flight.set_telemetry fl (fun () -> Json.Obj [ ("hits", Json.Int 6) ]);
  let verdict = Json.Obj [ ("check", Json.String "injected"); ("detail", Json.String "x") ] in
  let dir = Flight.dump fl ~label:"unit test" ~verdict in
  Alcotest.(check bool) "label sanitized" true (Filename.basename dir = "unit-test");
  let d = Flight.load dir in
  Alcotest.(check int) "events round-trip" 4 (List.length d.Flight.events);
  (match d.Flight.meta with
  | Some m ->
    Alcotest.(check int) "meta dropped" 2 m.Trace.dropped;
    Alcotest.(check int) "meta events" 4 m.Trace.events
  | None -> Alcotest.fail "dump lost the meta header");
  Alcotest.(check bool) "verdict round-trips" true (d.Flight.verdict = verdict);
  (match Json.member "hits" d.Flight.telemetry_json with
  | Some (Json.Int 6) -> ()
  | _ -> Alcotest.fail "telemetry snapshot lost");
  (* A second dump with the same label must not overwrite the first. *)
  let dir2 = Flight.dump fl ~label:"unit test" ~verdict in
  Alcotest.(check bool) "fresh directory" true (dir2 <> dir);
  Alcotest.(check int) "both recorded" 2 (List.length (Flight.dumps fl))

(* ---------------------------------------------- harness crashdump end to end *)

let test_harness_injected_violation_dumps () =
  (* A tiny quota guarantees Vm traffic; the injected check guarantees a
     failure without any real protocol bug.  The crashdump must re-parse and
     its span analysis must contain the Vm lifecycles of the failing window
     — the acceptance path of `dvp-cli analyze` over a crashdump. *)
  let profile =
    {
      Dvp_chaos.Profile.bounded with
      Dvp_chaos.Profile.label = "inject";
      Dvp_chaos.Profile.duration = 3.0;
      Dvp_chaos.Profile.item_total = 40;
    }
  in
  let inject _sys = [ { Dvp_chaos.Oracle.check = "injected"; detail = "test-only failure" } ] in
  let r =
    Dvp_chaos.Harness.run_seed ~profile ~seed:5 ~extra_checks:inject
      ~crashdumps:"obs_test_artifacts/chaos" ()
  in
  Alcotest.(check bool) "seed failed" true (Dvp_chaos.Harness.failed r);
  match r.Dvp_chaos.Harness.crashdump with
  | None -> Alcotest.fail "no crashdump written"
  | Some dir ->
    Alcotest.(check bool) "dump dir exists" true (Sys.file_exists dir);
    let d = Flight.load dir in
    Alcotest.(check bool) "trace re-parses" true (d.Flight.events <> []);
    let spans = Spans.of_events d.Flight.events in
    Alcotest.(check bool) "vm lifecycles present" true (spans.Spans.vms <> []);
    Alcotest.(check bool) "txn spans present" true (spans.Spans.txns <> []);
    (match Json.member "vm_lifecycles" (Spans.to_json spans) with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "vm_lifecycles missing from analyze JSON");
    (* The verdict names the injected check. *)
    let verdict_str = Json.to_string d.Flight.verdict in
    Alcotest.(check bool) "verdict names injected check" true
      (let re = "injected" in
       let n = String.length verdict_str and m = String.length re in
       let rec scan i = i + m <= n && (String.sub verdict_str i m = re || scan (i + 1)) in
       scan 0)

(* A clean seed with crashdumps enabled must not leave an artifact. *)
let test_harness_clean_seed_no_dump () =
  let profile =
    {
      Dvp_chaos.Profile.bounded with
      Dvp_chaos.Profile.label = "clean";
      Dvp_chaos.Profile.duration = 2.0;
      Dvp_chaos.Profile.crash_rate = 0.0;
      Dvp_chaos.Profile.storage_fault_prob = 0.0;
      Dvp_chaos.Profile.partition_rate = 0.0;
      Dvp_chaos.Profile.loss_rate = 0.0;
    }
  in
  let r =
    Dvp_chaos.Harness.run_seed ~profile ~seed:3 ~crashdumps:"obs_test_artifacts/chaos-clean" ()
  in
  Alcotest.(check bool) "no violations" false (Dvp_chaos.Harness.failed r);
  Alcotest.(check bool) "no crashdump" true (r.Dvp_chaos.Harness.crashdump = None)

(* ----------------------------------------------------- runner integration *)

let test_runner_telemetry_and_conserved () =
  let spec =
    {
      Dvp_workload.Spec.default with
      Dvp_workload.Spec.label = "obs-runner";
      Dvp_workload.Spec.n_sites = 3;
      Dvp_workload.Spec.items = [ (0, 300) ];
      Dvp_workload.Spec.arrival_rate = 40.0;
      Dvp_workload.Spec.duration = 4.0;
      Dvp_workload.Spec.seed = 11;
    }
  in
  let sys = Dvp_workload.Setup.dvp_system spec in
  let driver = Dvp_workload.Driver.of_dvp sys in
  let tel = Telemetry.of_system sys in
  let o = Dvp_workload.Runner.run driver spec ~telemetry:tel () in
  Alcotest.(check bool) "conserved" true (o.Dvp_workload.Runner.conserved = Some true);
  Alcotest.(check bool) "no crashdump" true (o.Dvp_workload.Runner.crashdump = None);
  let series = Telemetry.series tel in
  Alcotest.(check bool) "series populated" true (series <> []);
  (* The runner must have taken the final out-of-cadence sample at the end
     of the drain, past the nominal duration. *)
  let last_time =
    List.fold_left
      (fun acc s ->
        match List.rev s.Telemetry.points with (t, _) :: _ -> Float.max acc t | [] -> acc)
      0.0 series
  in
  Alcotest.(check bool) "final sample past duration" true (last_time > spec.Dvp_workload.Spec.duration);
  (* conserved/crashdump appear in the JSON export. *)
  let j = Dvp_workload.Runner.outcome_to_json o in
  (match Json.member "conserved" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "conserved missing from outcome JSON");
  match Json.member "crashdump" j with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "crashdump should be null"

(* The degraded-mode gauges: of_system must expose the total Vm outbox depth
   and, when a detector is armed, the survivors' Suspected/Condemned verdict
   counts. *)
let test_of_system_outbox_and_health_gauges () =
  let config =
    { Dvp.Config.default with Dvp.Config.health = Some Dvp_health.Health.default_config }
  in
  let sys = Dvp.System.create ~seed:5 ~config ~n:3 () in
  Dvp.System.add_item sys ~item:0 ~total:90 ();
  let tel = Telemetry.of_system sys in
  Telemetry.attach tel (Dvp.System.engine sys) ~period:0.5;
  Dvp.System.crash_site sys 2;
  Dvp.System.run_until sys 2.0;
  Telemetry.stop tel;
  let series = Telemetry.series tel in
  let names = List.map (fun s -> s.Telemetry.s_name) series in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "vm.outbox_depth"; "health.suspected"; "health.condemned" ];
  (* Site 2 has been silent past the suspicion deadline: both survivors'
     verdicts must show up in the gauge by the final sample. *)
  let suspected = List.find (fun s -> s.Telemetry.s_name = "health.suspected") series in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 suspected.Telemetry.points in
  Alcotest.(check bool) "suspicion observed" true (peak >= 2.0)

let () =
  Alcotest.run "dvp_obs"
    [
      ( "roundtrip",
        [ QCheck_alcotest.to_alcotest prop_event_json_roundtrip ] );
      ( "meta",
        [
          Alcotest.test_case "jsonl meta header" `Quick test_jsonl_meta;
          Alcotest.test_case "metrics trace_dropped" `Quick test_metrics_trace_dropped;
          Alcotest.test_case "probe sample_now" `Quick test_probe_sample_now;
        ] );
      ( "spans",
        [
          Alcotest.test_case "committed span" `Quick test_span_commit;
          Alcotest.test_case "aborted span" `Quick test_span_abort;
          Alcotest.test_case "crash-interrupted span" `Quick test_span_crash_interrupted;
          Alcotest.test_case "vm retransmit chain" `Quick test_span_vm_chain;
          Alcotest.test_case "clipped trace flagged" `Quick test_span_clipped_trace;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "windowed series" `Quick test_telemetry_windows;
          Alcotest.test_case "outbox + health gauges" `Quick
            test_of_system_outbox_and_health_gauges;
        ] );
      ( "flight",
        [ Alcotest.test_case "dump and reload" `Quick test_flight_dump_reload ] );
      ( "harness",
        [
          Alcotest.test_case "injected violation dumps" `Quick
            test_harness_injected_violation_dumps;
          Alcotest.test_case "clean seed leaves nothing" `Quick test_harness_clean_seed_no_dump;
        ] );
      ( "runner",
        [
          Alcotest.test_case "telemetry + conserved outcome" `Quick
            test_runner_telemetry_and_conserved;
        ] );
    ]
