(* Units for the crash-restart layer of the multicore runtime: mailbox
   poisoning (the kill path's loss semantics), the on-disk WAL frame codec
   and its torn-tail repair, seeded fault plans, and supervisor kill/revive
   with the restart-storm breaker. *)

module Mailbox = Dvp_runtime.Mailbox
module Walfile = Dvp_runtime.Walfile
module Fault = Dvp_runtime.Fault
module Cluster = Dvp_runtime.Cluster
module Supervisor = Dvp_runtime.Supervisor
module Log_event = Dvp_core.Log_event
module Txn = Dvp_core.Txn
module Op = Dvp_core.Op

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dvp-test-runtime-%d-%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir dir 0o700;
    dir

let rm_dir dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with _ -> ()

(* ---------------------------------------------------------------- mailbox *)

let test_mailbox_poison () =
  let mb = Mailbox.create () in
  Alcotest.(check bool) "send to open box" true (Mailbox.send mb 1 = Mailbox.Sent);
  Mailbox.push mb 2;
  Mailbox.poison mb;
  Alcotest.(check bool) "poisoned" true (Mailbox.is_poisoned mb);
  (* Producers' messages drop, typed for the client-facing path, silent for
     push — but the backlog from before the kill stays for the sweep. *)
  Alcotest.(check bool) "send reports poisoned" true
    (Mailbox.send mb 3 = Mailbox.Poisoned);
  Mailbox.push mb 4;
  Alcotest.(check (list int)) "sweep returns pre-kill backlog" [ 1; 2 ]
    (Mailbox.sweep mb);
  Mailbox.unpoison mb;
  Alcotest.(check bool) "unpoisoned accepts again" true
    (Mailbox.send mb 5 = Mailbox.Sent);
  Alcotest.(check (list int)) "respawn sees only post-revival traffic" [ 5 ]
    (Mailbox.drain mb);
  Mailbox.close mb;
  Alcotest.(check bool) "closed is terminal" true (Mailbox.send mb 6 = Mailbox.Closed)

let test_mailbox_wake () =
  let mb = Mailbox.create () in
  let got = Atomic.make (-1) in
  let consumer =
    Domain.spawn (fun () ->
        Mailbox.wait mb ~timeout:5.0;
        match Mailbox.drain mb with v :: _ -> Atomic.set got v | [] -> ())
  in
  Unix.sleepf 0.02;
  Mailbox.push mb 42;
  Domain.join consumer;
  Mailbox.close mb;
  Alcotest.(check int) "push woke the parked consumer" 42 (Atomic.get got)

(* ---------------------------------------------------------------- walfile *)

let sample_records =
  [
    Log_event.Txn_commit
      {
        txn = (1, 0);
        actions = [ Log_event.Set_fragment { item = 0; value = 12 } ];
      };
    Log_event.Vm_create
      {
        dst = 1;
        seq = 0;
        item = 0;
        amount = 3;
        reply_to = None;
        actions = [ Log_event.Set_fragment { item = 0; value = 9 } ];
      };
    Log_event.Vm_accept { peer = 1; seq = 0; item = 0; amount = 3; new_value = 12 };
    Log_event.Ack_progress { dst = 1; upto = 0 };
  ]

let test_walfile_roundtrip () =
  let dir = temp_dir () in
  let path = Walfile.path ~dir ~site:0 in
  let oc = Walfile.create path in
  List.iter (Walfile.append oc) sample_records;
  close_out oc;
  let r = Walfile.read path in
  Alcotest.(check bool) "clean file not torn" false r.Walfile.torn;
  Alcotest.(check int) "all frames read" (List.length sample_records)
    (List.length r.Walfile.records);
  Alcotest.(check bool) "records survive the frame codec" true
    (r.Walfile.records = sample_records);
  Alcotest.(check int) "no trailing garbage" r.Walfile.total_bytes
    r.Walfile.valid_bytes;
  rm_dir dir

let test_walfile_torn_tail () =
  let dir = temp_dir () in
  let path = Walfile.path ~dir ~site:3 in
  let oc = Walfile.create path in
  List.iter (Walfile.append oc) sample_records;
  close_out oc;
  Walfile.tear path ~junk:37;
  let r = Walfile.read path in
  Alcotest.(check bool) "tear detected" true r.Walfile.torn;
  Alcotest.(check bool) "valid prefix intact" true (r.Walfile.records = sample_records);
  Alcotest.(check bool) "junk counted beyond valid bytes" true
    (r.Walfile.total_bytes > r.Walfile.valid_bytes);
  (* The repair recovery performs: truncate to the valid prefix, then append
     in the repaired file's tail position. *)
  Walfile.truncate path r.Walfile.valid_bytes;
  let oc = Walfile.open_append path in
  Walfile.append oc (Log_event.Txn_applied { txn = (1, 0) });
  close_out oc;
  let r2 = Walfile.read path in
  Alcotest.(check bool) "repaired file reads clean" false r2.Walfile.torn;
  Alcotest.(check int) "old frames plus the post-repair append"
    (List.length sample_records + 1)
    (List.length r2.Walfile.records);
  rm_dir dir

let test_walfile_missing () =
  let r = Walfile.read "/nonexistent/never/site-0.wal" in
  Alcotest.(check bool) "missing file reads as empty, not torn" true
    (r.Walfile.records = [] && not r.Walfile.torn)

(* ------------------------------------------------------------ fault plans *)

let test_fault_plan_deterministic () =
  let a = Fault.plan ~seed:99 ~n:4 Fault.killer_spec in
  let b = Fault.plan ~seed:99 ~n:4 Fault.killer_spec in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  let c = Fault.plan ~seed:100 ~n:4 Fault.killer_spec in
  Alcotest.(check bool) "different seed, different plan" true (a <> c)

let test_fault_plan_shape () =
  for seed = 1 to 30 do
    let plan = Fault.plan ~seed ~n:4 Fault.killer_spec in
    Alcotest.(check bool) "at least one kill" true (Fault.kills_of plan <> []);
    Alcotest.(check int) "exactly one permanent kill" 1
      (List.length (Fault.forever_of plan));
    (* An injected sink fault on a killed site would turn into real record
       loss (the retained batch dies with the domain), so the generator must
       keep the two fault classes on disjoint sites. *)
    let killed = Fault.kills_of plan in
    List.iter
      (fun e ->
        match e.Fault.action with
        | Fault.Sink_fail { site; _ } ->
          Alcotest.(check bool) "sink faults only on never-killed sites" false
            (List.mem site killed)
        | _ -> ())
      plan;
    (* Sorted by time, all inside the horizon. *)
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a.Fault.at <= b.Fault.at && sorted rest
    in
    Alcotest.(check bool) "events time-sorted" true (sorted plan);
    List.iter
      (fun e ->
        Alcotest.(check bool) "event inside horizon" true
          (e.Fault.at >= 0.0 && e.Fault.at <= Fault.killer_spec.Fault.horizon))
      plan
  done

(* ------------------------------------------------------------- supervisor *)

let test_kill_revive_conserves () =
  let dir = temp_dir () in
  let c = Cluster.create ~seed:21 ~wal_dir:dir ~n:2 ~items:[ (0, 100) ] () in
  let sup = Supervisor.create c in
  for _ = 1 to 10 do
    match Cluster.exec c (Txn.write ~site:0 [ (0, Op.Incr 2) ]) with
    | Txn.Committed _ -> ()
    | Txn.Aborted _ -> Alcotest.fail "pre-kill increment aborted"
  done;
  Alcotest.(check bool) "kill lands" true (Supervisor.kill sup 0);
  Alcotest.(check bool) "dead site listed" true (Cluster.dead_sites c = [ 0 ]);
  (* Client calls against the dead site fail fast with the crash outcome. *)
  (match Cluster.exec c (Txn.write ~site:0 [ (0, Op.Incr 1) ]) with
  | Txn.Aborted _ -> ()
  | Txn.Committed _ -> Alcotest.fail "exec against a dead site committed");
  (* The survivor keeps working while its peer is down. *)
  (match Cluster.exec c (Txn.write ~site:1 [ (0, Op.Incr 5) ]) with
  | Txn.Committed _ -> ()
  | Txn.Aborted _ -> Alcotest.fail "survivor aborted during the outage");
  (match Supervisor.revive sup 0 with
  | Some replayed ->
    Alcotest.(check bool) "recovery replayed the stable log" true (replayed > 0)
  | None -> Alcotest.fail "revive refused a dead site");
  (* The respawned incarnation serves traffic under the same identity. *)
  (match Cluster.exec c (Txn.write ~site:0 [ (0, Op.Incr 3) ]) with
  | Txn.Committed _ -> ()
  | Txn.Aborted _ -> Alcotest.fail "post-revival increment aborted");
  Alcotest.(check bool) "quiesced" true (Cluster.quiesce c);
  let conserved = Cluster.conserved_all c in
  let frag_total = Array.fold_left ( + ) 0 (Cluster.fragments c ~item:0) in
  Cluster.stop c;
  rm_dir dir;
  Alcotest.(check bool) "conserved across kill + recovery" true conserved;
  (* 100 installed + 10×2 + 5 + 3 committed; the dead-site attempt aborted. *)
  Alcotest.(check int) "fragment total" 128 frag_total

let test_breaker_trips () =
  let dir = temp_dir () in
  let c = Cluster.create ~seed:22 ~wal_dir:dir ~n:2 ~items:[ (0, 50) ] () in
  let policy = { Supervisor.default_policy with Supervisor.max_restarts = 2 } in
  let sup = Supervisor.create ~policy c in
  for _ = 1 to 2 do
    Alcotest.(check bool) "kill" true (Supervisor.kill sup 1);
    match Supervisor.revive sup 1 with
    | Some _ -> ()
    | None -> Alcotest.fail "revive under the breaker threshold refused"
  done;
  Alcotest.(check bool) "breaker tripped after max restarts in window" true
    (Supervisor.breaker_tripped sup 1);
  Alcotest.(check bool) "kill still works" true (Supervisor.kill sup 1);
  Alcotest.(check bool) "tripped breaker refuses revival" true
    (Supervisor.revive sup 1 = None);
  Alcotest.(check bool) "site stays down" true (not (Cluster.site_alive c 1));
  Supervisor.reset_breaker sup 1;
  (match Supervisor.revive sup 1 with
  | Some _ -> ()
  | None -> Alcotest.fail "revive after reset refused");
  Alcotest.(check int) "restart count survives the reset" 3 (Supervisor.restarts sup 1);
  Alcotest.(check bool) "quiesced" true (Cluster.quiesce c);
  let conserved = Cluster.conserved_all c in
  Cluster.stop c;
  rm_dir dir;
  Alcotest.(check bool) "conserved" true conserved

let test_supervisor_needs_wal_dir () =
  let c = Cluster.create ~seed:23 ~n:2 ~items:[ (0, 10) ] () in
  Alcotest.check_raises "memory-only cluster rejected"
    (Invalid_argument
       "Supervisor.create: cluster has no wal_dir (respawn needs the file)")
    (fun () -> ignore (Supervisor.create c));
  Cluster.stop c

let () =
  Alcotest.run "dvp_runtime"
    [
      ( "mailbox",
        [
          Alcotest.test_case "poison, sweep, unpoison" `Quick test_mailbox_poison;
          Alcotest.test_case "push wakes a parked consumer" `Quick test_mailbox_wake;
        ] );
      ( "walfile",
        [
          Alcotest.test_case "frame round trip" `Quick test_walfile_roundtrip;
          Alcotest.test_case "torn tail detected and repaired" `Quick
            test_walfile_torn_tail;
          Alcotest.test_case "missing file is empty" `Quick test_walfile_missing;
        ] );
      ( "fault",
        [
          Alcotest.test_case "plans are seed-deterministic" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "plan shape invariants" `Quick test_fault_plan_shape;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "kill + revive conserves" `Quick test_kill_revive_conserves;
          Alcotest.test_case "restart-storm breaker" `Quick test_breaker_trips;
          Alcotest.test_case "requires a wal_dir" `Quick test_supervisor_needs_wal_dir;
        ] );
    ]
