(* Direct tests of the virtual-message engine (Dvp.Vm) with a hand-driven
   transport: every real message lands in a queue we deliver, drop, duplicate
   or reorder explicitly, so each clause of Section 4.2 is exercised in
   isolation.  Also covers checkpoint snapshots and log replay equality. *)

module Engine = Dvp_sim.Engine
module Wal = Dvp_storage.Wal
open Dvp

(* A two-site harness: vm.(0) and vm.(1) with explicit message queues. *)
type harness = {
  engine : Engine.t;
  wals : Log_event.t Wal.t array;
  vms : Vm.t array;
  (* outgoing real messages per sender, in send order *)
  queues : (int * Proto.t) Queue.t array;
  (* simple per-site fragment stores the try_credit callbacks use *)
  frags : int array array; (* frags.(site).(item) *)
  (* when true, site's try_credit defers (simulates a locked item) *)
  defer : bool array;
  metrics : Metrics.t array;
}

let mk_harness ?(items = 4) () =
  let engine = Engine.create () in
  let wals = [| Wal.create (); Wal.create () |] in
  let queues = [| Queue.create (); Queue.create () |] in
  let frags = [| Array.make items 0; Array.make items 0 |] in
  let defer = [| false; false |] in
  let metrics = [| Metrics.create (); Metrics.create () |] in
  let mk self =
    Vm.create (Dvp_sim.Substrate_des.of_engine engine) ~n:2 ~self ~wal:wals.(self)
      ~send:(fun ~dst msg ->
        ignore dst;
        Queue.add (self, msg) queues.(self))
      ~try_credit:(fun ~peer:_ ~item ~amount ~reply_to:_ ->
        if defer.(self) then None
        else begin
          frags.(self).(item) <- frags.(self).(item) + amount;
          Some frags.(self).(item)
        end)
      ~ts_counter:(fun () -> 0)
      ~metrics:metrics.(self) ()
  in
  let vms = [| mk 0; mk 1 |] in
  Array.iter Vm.start vms;
  { engine; wals; vms; queues; frags; defer; metrics }

(* Deliver one queued message from [src] into the peer's engine. *)
let deliver h ~src msg =
  let dst = 1 - src in
  match msg with
  | Proto.Vm_data { seq; item; amount; reply_to; ack_upto; _ } ->
    Vm.handle_data h.vms.(dst) ~src ~seq ~item ~amount ~reply_to ~ack_upto
  | Proto.Vm_batch { frags; ack_upto; _ } -> Vm.handle_batch h.vms.(dst) ~src ~frags ~ack_upto
  | Proto.Vm_ack { upto; _ } -> Vm.handle_ack h.vms.(dst) ~src ~upto
  | Proto.Request _ | Proto.Probe | Proto.Probe_reply -> ()

let pump_one h ~src =
  match Queue.take_opt h.queues.(src) with
  | Some (_, msg) ->
    deliver h ~src msg;
    Some msg
  | None -> None

let rec pump_all h =
  let moved = ref false in
  for src = 0 to 1 do
    while not (Queue.is_empty h.queues.(src)) do
      ignore (pump_one h ~src);
      moved := true
    done
  done;
  if !moved then pump_all h

let drop_all h ~src = Queue.clear h.queues.(src)

(* ------------------------------------------------------------- basics *)

let test_create_logs_before_send () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:2 ~amount:7 ~new_local:3 ();
  (* The Vm_create record is stable even though nothing was delivered. *)
  let records = Wal.records h.wals.(0) in
  (match records with
  | [ Log_event.Vm_create { dst = 1; seq = 0; item = 2; amount = 7; actions; _ } ] ->
    Alcotest.(check bool) "debit action logged" true
      (actions = [ Log_event.Set_fragment { item = 2; value = 3 } ])
  | _ -> Alcotest.fail "expected exactly one Vm_create");
  Alcotest.(check int) "one real message queued" 1 (Queue.length h.queues.(0));
  Alcotest.(check bool) "outstanding" true (Vm.has_outstanding h.vms.(0) ~item:2)

let test_clean_transfer () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  pump_all h;
  Alcotest.(check int) "credited" 5 h.frags.(1).(0);
  Alcotest.(check bool) "no longer outstanding" false (Vm.has_outstanding h.vms.(0) ~item:0);
  Alcotest.(check int) "watermark" 0 (Vm.accepted_upto h.vms.(1) ~peer:0);
  (* Receiver logged the acceptance. *)
  let accepts =
    List.filter (function Log_event.Vm_accept _ -> true | _ -> false)
      (Wal.records h.wals.(1))
  in
  Alcotest.(check int) "one accept record" 1 (List.length accepts)

let test_zero_amount_vm () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:0 ~new_local:9 ();
  pump_all h;
  Alcotest.(check int) "zero credit fine" 0 h.frags.(1).(0);
  Alcotest.(check int) "still advances seq" 0 (Vm.accepted_upto h.vms.(1) ~peer:0)

let test_invalid_sends () =
  let h = mk_harness () in
  Alcotest.check_raises "self send" (Invalid_argument "Vm.send_value: destination is self")
    (fun () -> Vm.send_value h.vms.(0) ~dst:0 ~item:0 ~amount:1 ~new_local:0 ());
  Alcotest.check_raises "negative" (Invalid_argument "Vm.send_value: negative amount")
    (fun () -> Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:(-1) ~new_local:0 ())

(* -------------------------------------------------- ordering, duplicates *)

let test_out_of_order_ignored () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:1 ~new_local:0 ();
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:2 ~new_local:0 ();
  (* Deliver seq 1 first: must be ignored entirely. *)
  let m0 = Queue.take h.queues.(0) and m1 = Queue.take h.queues.(0) in
  deliver h ~src:0 (snd m1);
  Alcotest.(check int) "nothing credited yet" 0 h.frags.(1).(0);
  Alcotest.(check int) "watermark unmoved" (-1) (Vm.accepted_upto h.vms.(1) ~peer:0);
  (* Now the gap arrives; then a retransmission of seq 1 would complete it,
     but here we just replay the original sends in order. *)
  deliver h ~src:0 (snd m0);
  Alcotest.(check int) "first credited" 1 h.frags.(1).(0);
  deliver h ~src:0 (snd m1);
  Alcotest.(check int) "second credited" 3 h.frags.(1).(0);
  pump_all h;
  Alcotest.(check bool) "all acked" false (Vm.has_outstanding h.vms.(0) ~item:0)

let test_duplicate_discarded_and_reacked () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  let _, msg = Queue.take h.queues.(0) in
  deliver h ~src:0 msg;
  Alcotest.(check int) "credited once" 5 h.frags.(1).(0);
  (* Drop the ack so the sender will retransmit; feed a duplicate. *)
  drop_all h ~src:1;
  deliver h ~src:0 msg;
  Alcotest.(check int) "not credited twice" 5 h.frags.(1).(0);
  Alcotest.(check int) "duplicate counted" 1 (Metrics.vm_duplicates h.metrics.(1));
  (* The duplicate triggered a re-ack: deliver it and the sender settles. *)
  pump_all h;
  Alcotest.(check bool) "settled" false (Vm.has_outstanding h.vms.(0) ~item:0)

let test_retransmission_after_loss () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  drop_all h ~src:0;
  (* The retransmission timer (default 0.15 s) resends it. *)
  Engine.run_until h.engine 0.2;
  Alcotest.(check bool) "retransmitted" true (Queue.length h.queues.(0) >= 1);
  Alcotest.(check bool) "counted" true (Metrics.vm_retransmissions h.metrics.(0) >= 1);
  pump_all h;
  Alcotest.(check int) "eventually credited" 5 h.frags.(1).(0)

let test_deferred_credit_redelivers () =
  let h = mk_harness () in
  h.defer.(1) <- true;
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  pump_all h;
  Alcotest.(check int) "deferred: no credit" 0 h.frags.(1).(0);
  Alcotest.(check int) "watermark unmoved" (-1) (Vm.accepted_upto h.vms.(1) ~peer:0);
  (* Unlock and let the retransmission deliver it. *)
  h.defer.(1) <- false;
  Engine.run_until h.engine 0.2;
  pump_all h;
  Alcotest.(check int) "credited after unlock" 5 h.frags.(1).(0)

(* ----------------------------------------------------- crash / recovery *)

let test_sender_crash_resumes_outbox () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  drop_all h ~src:0;
  (* Sender crashes: volatile gone, stable log intact. *)
  Vm.crash h.vms.(0);
  Wal.crash h.wals.(0);
  Alcotest.(check bool) "volatile wiped" false (Vm.has_outstanding h.vms.(0) ~item:0);
  Vm.recover h.vms.(0);
  Alcotest.(check bool) "outbox rebuilt" true (Vm.has_outstanding h.vms.(0) ~item:0);
  Alcotest.(check int) "seq counter rebuilt" 1 (Vm.next_seq h.vms.(0) ~dst:1);
  Engine.run_until h.engine 0.2;
  pump_all h;
  Alcotest.(check int) "value finally arrives" 5 h.frags.(1).(0)

let test_receiver_crash_no_double_credit () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount:5 ~new_local:0 ();
  let _, msg = Queue.take h.queues.(0) in
  deliver h ~src:0 msg;
  drop_all h ~src:1;
  (* Receiver crashes after accepting; its watermark must be rebuilt from
     the Vm_accept record so the retransmission is discarded. *)
  Vm.crash h.vms.(1);
  Wal.crash h.wals.(1);
  Vm.recover h.vms.(1);
  Alcotest.(check int) "watermark rebuilt" 0 (Vm.accepted_upto h.vms.(1) ~peer:0);
  deliver h ~src:0 msg;
  (* frags array is test-local volatile state; the engine must not call
     try_credit again for the duplicate. *)
  Alcotest.(check int) "no double credit" 5 h.frags.(1).(0);
  pump_all h;
  Alcotest.(check bool) "settled" false (Vm.has_outstanding h.vms.(0) ~item:0)

let test_recover_equals_live_state () =
  (* Property-ish: after arbitrary traffic, recover() rebuilds exactly the
     live protocol state. *)
  let h = mk_harness () in
  for i = 0 to 9 do
    Vm.send_value h.vms.(0) ~dst:1 ~item:(i mod 4) ~amount:i ~new_local:0 ()
  done;
  (* Deliver some, lose some. *)
  for _ = 1 to 6 do
    ignore (pump_one h ~src:0)
  done;
  pump_all h;
  (* Ack progress is logged unforced (losing it is harmless); force it here
     so the stable log reflects the live state exactly and equality holds. *)
  Wal.force h.wals.(0);
  let live_next = Vm.next_seq h.vms.(0) ~dst:1 in
  let live_out = Vm.outstanding_to h.vms.(0) 1 in
  Vm.crash h.vms.(0);
  Vm.recover h.vms.(0);
  Alcotest.(check int) "next_seq equal" live_next (Vm.next_seq h.vms.(0) ~dst:1);
  Alcotest.(check (list (triple int int int)))
    "outbox equal" live_out
    (Vm.outstanding_to h.vms.(0) 1)

(* ---------------------------------------------------------- checkpoints *)

let test_snapshot_roundtrip () =
  let h = mk_harness () in
  Vm.send_value h.vms.(0) ~dst:1 ~item:1 ~amount:5 ~new_local:20 ();
  Vm.send_value h.vms.(0) ~dst:1 ~item:2 ~amount:3 ~new_local:7 ();
  pump_all h;
  Vm.send_value h.vms.(0) ~dst:1 ~item:1 ~amount:2 ~new_local:18 ();
  drop_all h ~src:0;
  (* Snapshot with two delivered and one outstanding; write it as the only
     log content and recover from it. *)
  let record = Vm.snapshot h.vms.(0) ~fragments:[ (1, 18); (2, 7) ] ~max_counter:42 in
  let live_next = Vm.next_seq h.vms.(0) ~dst:1 in
  let live_out = Vm.outstanding_to h.vms.(0) 1 in
  Wal.append h.wals.(0) record;
  Wal.truncate_before h.wals.(0) ~keep_from:(Wal.end_index h.wals.(0) - 1);
  Alcotest.(check int) "log truncated to snapshot" 1 (Wal.stable_length h.wals.(0));
  Vm.crash h.vms.(0);
  Vm.recover h.vms.(0);
  Alcotest.(check int) "next_seq from snapshot" live_next (Vm.next_seq h.vms.(0) ~dst:1);
  Alcotest.(check (list (triple int int int)))
    "outbox from snapshot" live_out
    (Vm.outstanding_to h.vms.(0) 1);
  (* The outstanding Vm still gets delivered after recovery. *)
  Engine.run_until h.engine 0.4;
  pump_all h;
  Alcotest.(check int) "outstanding survives checkpoint" 7 h.frags.(1).(1)

let test_checkpoint_codec () =
  let record =
    Log_event.Checkpoint
      {
        fragments = [ (0, 10); (3, 0) ];
        accepted = [ (1, 5) ];
        next_seq = [ (1, 7) ];
        acked = [ (1, 4) ];
        outbox = [ (1, 5, 0, 9, Some (3, 1)); (1, 6, 2, 1, None) ];
        max_counter = 99;
      }
  in
  Alcotest.(check bool) "roundtrips" true
    (Log_event.decode (Log_event.encode record) = Some record)

(* ------------------------------------------------- batching and backoff *)

let test_batch_roundtrip () =
  let h = mk_harness () in
  for i = 0 to 2 do
    Vm.send_value h.vms.(0) ~dst:1 ~item:i ~amount:(i + 1) ~new_local:0 ()
  done;
  (* Lose the three initial singles; the retransmission scan finds three due
     fragments for one destination and coalesces them. *)
  drop_all h ~src:0;
  Engine.run_until h.engine 0.2;
  Alcotest.(check int) "one real message for three fragments" 1 (Queue.length h.queues.(0));
  (match Queue.peek h.queues.(0) with
  | _, Proto.Vm_batch { frags; _ } ->
    Alcotest.(check (list int)) "fragments in seq order" [ 0; 1; 2 ]
      (List.map (fun f -> f.Proto.seq) frags)
  | _ -> Alcotest.fail "expected a Vm_batch");
  pump_all h;
  for i = 0 to 2 do
    Alcotest.(check int) "credited" (i + 1) h.frags.(1).(i);
    Alcotest.(check bool) "settled" false (Vm.has_outstanding h.vms.(0) ~item:i)
  done;
  Alcotest.(check int) "watermark covers the batch" 2 (Vm.accepted_upto h.vms.(1) ~peer:0)

let test_batch_duplicate_and_reorder () =
  (* Hand-crafted batches against the receiving side: the in-order /
     duplicate rules apply per fragment, exactly as for singles. *)
  let h = mk_harness () in
  let frag seq item amount = { Proto.seq; item; amount; reply_to = None } in
  Vm.handle_batch h.vms.(1) ~src:0 ~frags:[ frag 0 0 1; frag 1 1 2 ] ~ack_upto:(-1);
  Alcotest.(check int) "both credited" 1 h.frags.(1).(0);
  Alcotest.(check int) "watermark" 1 (Vm.accepted_upto h.vms.(1) ~peer:0);
  (* Replay of the whole batch: every fragment is a duplicate. *)
  Vm.handle_batch h.vms.(1) ~src:0 ~frags:[ frag 0 0 1; frag 1 1 2 ] ~ack_upto:(-1);
  Alcotest.(check int) "no double credit" 1 h.frags.(1).(0);
  Alcotest.(check int) "duplicates counted per fragment" 2
    (Metrics.vm_duplicates h.metrics.(1));
  (* Overlapping batch: one duplicate, one fresh. *)
  Vm.handle_batch h.vms.(1) ~src:0 ~frags:[ frag 1 1 2; frag 2 0 4 ] ~ack_upto:(-1);
  Alcotest.(check int) "fresh fragment credited" 5 h.frags.(1).(0);
  Alcotest.(check int) "watermark advanced" 2 (Vm.accepted_upto h.vms.(1) ~peer:0);
  (* Reordered within a batch: the future fragment (seq 4) is ignored, the
     in-order one (seq 3) lands; a later retransmission completes the gap. *)
  Vm.handle_batch h.vms.(1) ~src:0 ~frags:[ frag 4 1 8; frag 3 0 16 ] ~ack_upto:(-1);
  Alcotest.(check int) "in-order fragment credited" 21 h.frags.(1).(0);
  Alcotest.(check int) "future fragment not credited" 2 h.frags.(1).(1);
  Alcotest.(check int) "watermark stops at the gap" 3 (Vm.accepted_upto h.vms.(1) ~peer:0);
  Vm.handle_batch h.vms.(1) ~src:0 ~frags:[ frag 4 1 8 ] ~ack_upto:(-1);
  Alcotest.(check int) "gap filled on retransmission" 10 h.frags.(1).(1);
  Alcotest.(check int) "watermark complete" 4 (Vm.accepted_upto h.vms.(1) ~peer:0)

let test_batch_partition_heals () =
  let h = mk_harness () in
  for i = 0 to 4 do
    Vm.send_value h.vms.(0) ~dst:1 ~item:(i mod 4) ~amount:10 ~new_local:0 ()
  done;
  (* A 2-second partition: every real message in either direction is lost. *)
  for _ = 1 to 10 do
    Engine.run_until h.engine (Engine.now h.engine +. 0.2);
    drop_all h ~src:0;
    drop_all h ~src:1
  done;
  (* Heal and let the (backed-off) retransmissions settle everything. *)
  for _ = 1 to 30 do
    Engine.run_until h.engine (Engine.now h.engine +. 0.2);
    pump_all h
  done;
  let total = Array.fold_left ( + ) 0 h.frags.(1) in
  Alcotest.(check int) "every fragment arrives exactly once" 50 total;
  for i = 0 to 3 do
    Alcotest.(check bool) "nothing outstanding" false (Vm.has_outstanding h.vms.(0) ~item:i)
  done

(* A lone sender whose transport is a black hole — a sustained partition.
   [mult] controls the backoff multiplier (1.0 = fixed retry period). *)
let blackholed_retransmissions ~mult ~outstanding ~seconds =
  let engine = Engine.create () in
  let wal = Wal.create () in
  let metrics = Metrics.create () in
  let vm =
    Vm.create (Dvp_sim.Substrate_des.of_engine engine) ~n:2 ~self:0 ~wal
      ~send:(fun ~dst:_ _ -> ())
      ~try_credit:(fun ~peer:_ ~item:_ ~amount:_ ~reply_to:_ -> None)
      ~ts_counter:(fun () -> 0)
      ~backoff_mult:mult ~metrics ()
  in
  Vm.start vm;
  for i = 0 to outstanding - 1 do
    Vm.send_value vm ~dst:1 ~item:i ~amount:1 ~new_local:0 ()
  done;
  Engine.run_until engine (float_of_int seconds);
  Metrics.vm_retransmissions metrics

(* Property: under a sustained partition, exponential backoff keeps the
   retransmission count well below the fixed-period sender's — and bounded by
   the cap (0.6 s by default): at most ~2 scans per second, each resending
   every outstanding fragment. *)
let prop_backoff_bounds_retransmissions =
  QCheck.Test.make ~name:"backoff bounds retransmissions under sustained partition" ~count:20
    QCheck.(pair (int_range 1 8) (int_range 5 15))
    (fun (outstanding, seconds) ->
      let fixed = blackholed_retransmissions ~mult:1.0 ~outstanding ~seconds in
      let backed = blackholed_retransmissions ~mult:2.0 ~outstanding ~seconds in
      backed * 2 <= fixed && backed <= outstanding * (2 + (seconds * 2)))

(* Property: under a random schedule of sends, deliveries, message drops,
   and crashes on both sides, no value is ever lost or duplicated:
   credited + still-outstanding = total sent.  (Forced-ack bookkeeping may
   lag, so outstanding is measured against the receiver watermark.) *)
let prop_vm_conserves_value =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun amount -> `Send (amount mod 20)) (int_bound 19));
          (5, return `Deliver_one);
          (2, return `Drop_all);
          (1, return `Crash_sender);
          (1, return `Crash_receiver);
          (2, return `Tick);
        ])
  in
  QCheck.Test.make ~name:"vm conserves value under chaos" ~count:120
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) op_gen))
    (fun ops ->
      let h = mk_harness ~items:1 () in
      let sent = ref 0 in
      List.iter
        (fun op ->
          match op with
          | `Send amount ->
            sent := !sent + amount;
            Vm.send_value h.vms.(0) ~dst:1 ~item:0 ~amount ~new_local:0 ()
          | `Deliver_one -> ignore (pump_one h ~src:0); ignore (pump_one h ~src:1)
          | `Drop_all ->
            drop_all h ~src:0;
            drop_all h ~src:1
          | `Crash_sender ->
            drop_all h ~src:0;
            Vm.crash h.vms.(0);
            Wal.crash h.wals.(0);
            Vm.recover h.vms.(0)
          | `Crash_receiver ->
            drop_all h ~src:1;
            Vm.crash h.vms.(1);
            Wal.crash h.wals.(1);
            Vm.recover h.vms.(1)
          | `Tick -> Engine.run_until h.engine (Engine.now h.engine +. 0.2))
        ops;
      (* Let retransmissions settle everything that is still owed. *)
      for _ = 1 to 50 do
        Engine.run_until h.engine (Engine.now h.engine +. 0.2);
        pump_all h
      done;
      let credited = h.frags.(1).(0) in
      credited = !sent && not (Vm.has_outstanding h.vms.(0) ~item:0))

let () =
  Alcotest.run "dvp_vm"
    [
      ( "basics",
        [
          Alcotest.test_case "create logs before send" `Quick test_create_logs_before_send;
          Alcotest.test_case "clean transfer" `Quick test_clean_transfer;
          Alcotest.test_case "zero amount" `Quick test_zero_amount_vm;
          Alcotest.test_case "invalid sends" `Quick test_invalid_sends;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "out of order ignored" `Quick test_out_of_order_ignored;
          Alcotest.test_case "duplicate discarded" `Quick test_duplicate_discarded_and_reacked;
          Alcotest.test_case "retransmission after loss" `Quick test_retransmission_after_loss;
          Alcotest.test_case "deferred credit redelivers" `Quick test_deferred_credit_redelivers;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "sender crash resumes outbox" `Quick
            test_sender_crash_resumes_outbox;
          Alcotest.test_case "receiver crash no double credit" `Quick
            test_receiver_crash_no_double_credit;
          Alcotest.test_case "recover equals live state" `Quick test_recover_equals_live_state;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "checkpoint codec" `Quick test_checkpoint_codec;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batch roundtrip" `Quick test_batch_roundtrip;
          Alcotest.test_case "batch duplicate and reorder" `Quick
            test_batch_duplicate_and_reorder;
          Alcotest.test_case "batch partition heals" `Quick test_batch_partition_heals;
          QCheck_alcotest.to_alcotest prop_backoff_bounds_retransmissions;
        ] );
      ("chaos", [ QCheck_alcotest.to_alcotest prop_vm_conserves_value ]);
    ]
