(* Tests for elastic membership: online join (seed handshake, promotion,
   epoch bump), graceful leave (drain, shed, channel restart), policy-driven
   rebalancing, the membership-epoch fence on stale Vm, evacuation
   idempotence, and the evacuate -> reinstate -> rejoin -> rebalance cycle
   under the chaos oracle. *)

module Trace = Dvp_sim.Trace
module Health = Dvp_health.Health
module Oracle = Dvp_chaos.Oracle
open Dvp

let quiet _ = ()

let health_config = { Config.default with Config.health = Some Health.default_config }

let membership_t =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Membership.to_string s))
    ( = )

let no_violations what sys =
  match Oracle.check_system sys with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %s" what
      (String.concat "; " (List.map (Format.asprintf "%a" Oracle.pp_violation) vs))

(* ------------------------------------------------------------------ join *)

let test_join_seeds_and_promotes () =
  let trace = Trace.create () in
  let sys = System.create ~config:health_config ~trace ~capacity:5 ~n:4 () in
  System.add_item sys ~item:0 ~total:100 ();
  Alcotest.check membership_t "spare starts detached" Membership.Detached
    (System.member_state sys 4);
  Alcotest.(check int) "spare holds nothing" 0 (System.fragments sys ~item:0).(4);
  Alcotest.(check (list int)) "members are the first four" [ 0; 1; 2; 3 ]
    (System.members sys);
  Alcotest.(check int) "epoch starts at 0" 0 (System.epoch sys);
  (match System.join sys 4 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "join refused: %s" e);
  System.run_for sys 2.0;
  Alcotest.check membership_t "member once the handshake settles" Membership.Member
    (System.member_state sys 4);
  Alcotest.(check int) "epoch bumped" 1 (System.epoch sys);
  Alcotest.(check bool) "seed value arrived" true ((System.fragments sys ~item:0).(4) > 0);
  no_violations "post-join" sys;
  (* The joined site serves transactions like any member. *)
  let result = ref None in
  System.exec sys
    (Txn.write ~site:4 [ (0, Op.Decr 5) ])
    ~on_done:(fun r -> result := Some r);
  System.run_for sys 2.0;
  (match !result with
  | Some (Txn.Committed _) -> ()
  | _ -> Alcotest.fail "transaction at the joiner did not commit");
  Alcotest.(check int) "one Join event" 1
    (Trace.count_events trace ~f:(function Trace.Join _ -> true | _ -> false));
  (* Joining an attached slot is refused. *)
  match System.join sys 4 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "join of a member accepted"

let test_crash_mid_join_recovers () =
  let sys = System.create ~config:health_config ~capacity:4 ~n:3 () in
  System.add_item sys ~item:0 ~total:90 ();
  (match System.join sys 3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "join refused: %s" e);
  (* Crash the joiner before the seed Vm can land. *)
  System.run_for sys 0.01;
  System.crash_site sys 3;
  System.run_for sys 1.0;
  Alcotest.check membership_t "crash leaves the slot joining" Membership.Joining
    (System.member_state sys 3);
  no_violations "mid-join crash" sys;
  System.recover_site sys 3;
  System.run_for sys 3.0;
  Alcotest.check membership_t "join completes after recovery" Membership.Member
    (System.member_state sys 3);
  Alcotest.(check bool) "joiner was seeded" true ((System.fragments sys ~item:0).(3) > 0);
  no_violations "post-recovery join" sys

(* ----------------------------------------------------------------- leave *)

let test_leave_drains_and_detaches () =
  let trace = Trace.create () in
  let sys = System.create ~config:health_config ~trace ~n:4 () in
  System.add_item sys ~item:0 ~total:120 ();
  System.add_item sys ~item:1 ~total:60 ();
  (* Some cross-site history first, so the Vm channels are not virgin. *)
  for site = 0 to 3 do
    System.exec sys (Txn.write ~site [ (0, Op.Decr 3) ]) ~on_done:quiet
  done;
  System.run_for sys 1.0;
  (match System.leave sys 2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "leave refused: %s" e);
  (* The leaver refuses new work from the moment the leave starts. *)
  let result = ref None in
  System.exec sys
    (Txn.write ~site:2 [ (0, Op.Incr 1) ])
    ~on_done:(fun r -> result := Some r);
  System.run_for sys 0.01;
  (match !result with
  | Some (Txn.Aborted Metrics.Not_member) -> ()
  | _ -> Alcotest.fail "leaver accepted a submission");
  System.run_for sys 5.0;
  Alcotest.check membership_t "detached once drained" Membership.Detached
    (System.member_state sys 2);
  Alcotest.(check bool) "epoch bumped" true (System.epoch sys > 0);
  Alcotest.(check int) "item 0 shed" 0 (System.fragments sys ~item:0).(2);
  Alcotest.(check int) "item 1 shed" 0 (System.fragments sys ~item:1).(2);
  Alcotest.(check bool) "off the network" false (System.site_up sys 2);
  Alcotest.(check int) "item 0 total intact" 108 (System.total_at_sites sys ~item:0);
  no_violations "post-leave" sys;
  Alcotest.(check int) "one Leave event" 1
    (Trace.count_events trace ~f:(function Trace.Leave _ -> true | _ -> false));
  (* The survivors keep committing. *)
  let result = ref None in
  System.exec sys
    (Txn.write ~site:0 [ (0, Op.Decr 8) ])
    ~on_done:(fun r -> result := Some r);
  System.run_for sys 2.0;
  match !result with
  | Some (Txn.Committed _) -> ()
  | _ -> Alcotest.fail "post-leave transaction did not commit"

let test_leave_refusals () =
  let sys = System.create ~n:2 () in
  System.add_item sys ~item:0 ~total:50 ();
  (match System.leave sys 0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "leave below two members accepted");
  let sys4 = System.create ~n:4 () in
  System.crash_site sys4 1;
  match System.leave sys4 1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "leave of a down site accepted"

(* The crux of epoch fencing: a full leave-then-rejoin cycle restarts the
   Vm channels at sequence zero, and the stable logs must still read as
   exactly-once afterwards. *)
let test_leave_rejoin_exactly_once () =
  let sys = System.create ~config:health_config ~n:4 () in
  System.add_item sys ~item:0 ~total:200 ();
  let churn () =
    for site = 0 to 3 do
      if System.member_state sys site = Membership.Member then begin
        System.exec sys (Txn.write ~site [ (0, Op.Decr 7) ]) ~on_done:quiet;
        System.exec sys (Txn.write ~site [ (0, Op.Incr 7) ]) ~on_done:quiet
      end
    done;
    System.run_for sys 1.5
  in
  churn ();
  (match System.leave sys 3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "leave refused: %s" e);
  System.run_for sys 5.0;
  Alcotest.check membership_t "left" Membership.Detached (System.member_state sys 3);
  let epoch_after_leave = System.epoch sys in
  churn ();
  (match System.join sys 3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejoin refused: %s" e);
  System.run_for sys 3.0;
  Alcotest.check membership_t "rejoined" Membership.Member (System.member_state sys 3);
  Alcotest.(check bool) "epoch bumped again" true (System.epoch sys > epoch_after_leave);
  churn ();
  no_violations "leave -> rejoin -> traffic" sys

(* ------------------------------------------------------------- rebalance *)

let test_rebalance_moves_hot_to_cold () =
  let trace = Trace.create () in
  let sys = System.create ~trace ~n:4 () in
  System.add_item sys ~item:0 ~total:400 ~split:(`Explicit [ 400; 0; 0; 0 ]) ();
  let moved = System.rebalance ~slack:8 sys in
  Alcotest.(check int) "full excess moved" 300 moved;
  System.run_for sys 2.0;
  let frags = System.fragments sys ~item:0 in
  Array.iter
    (fun f -> Alcotest.(check int) "evened out" 100 f)
    frags;
  no_violations "post-rebalance" sys;
  Alcotest.(check int) "one Rebalance event" 1
    (Trace.count_events trace ~f:(function Trace.Rebalance _ -> true | _ -> false));
  (* A balanced system has nothing to move. *)
  Alcotest.(check int) "second pass is a no-op" 0 (System.rebalance ~slack:8 sys)

let test_auto_rebalance_policy () =
  let config =
    { Config.default with Config.rebalance = Some { Config.every = 0.2; slack = 4 } }
  in
  let sys = System.create ~config ~n:4 () in
  System.add_item sys ~item:0 ~total:400 ~split:(`Explicit [ 400; 0; 0; 0 ]) ();
  System.run_for sys 2.0;
  let frags = System.fragments sys ~item:0 in
  Array.iter
    (fun f -> Alcotest.(check bool) "auto-evened" true (f >= 90 && f <= 110))
    frags;
  no_violations "auto-rebalance" sys

(* ---------------------------------------------------------- epoch fence *)

let test_stale_epoch_fenced () =
  let sys = System.create ~config:health_config ~capacity:5 ~n:4 () in
  System.add_item sys ~item:0 ~total:100 ();
  (* Bump the epoch once via a join. *)
  (match System.join sys 4 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "join refused: %s" e);
  System.run_for sys 2.0;
  Alcotest.(check int) "epoch 1" 1 (System.epoch sys);
  let dst = System.site sys 1 in
  let before = Site.fragment dst ~item:0 in
  let stale_before = Metrics.vm_stale_epochs (Site.metrics dst) in
  (* A Vm stamped with the pre-join epoch: in-order by sequence number, but
     stale by epoch — the fence must reject it without crediting. *)
  Site.handle_message dst ~src:0
    (Proto.Vm_data
       {
         seq = 0;
         item = 0;
         amount = 7;
         ts_counter = 99;
         reply_to = None;
         ack_upto = -1;
         epoch = 0;
       });
  Alcotest.(check int) "no credit from a stale Vm" before (Site.fragment dst ~item:0);
  Alcotest.(check int) "rejection counted" (stale_before + 1)
    (Metrics.vm_stale_epochs (Site.metrics dst));
  (* A stale ack must not pop fresh outbox entries either. *)
  let src = System.site sys 0 in
  Alcotest.(check bool) "push accepted" true
    (Site.push_value src ~dst:1 ~item:0 ~amount:3);
  let depth = Vm.outbox_depth (Site.vm src) in
  Site.handle_message src ~src:1 (Proto.Vm_ack { upto = 50; epoch = 0 });
  Alcotest.(check int) "stale ack ignored" depth (Vm.outbox_depth (Site.vm src));
  System.run_for sys 1.0;
  no_violations "post-fence" sys

(* --------------------------------------------- evacuation idempotence *)

let test_evacuate_idempotent () =
  let sys = System.create ~config:health_config ~n:4 () in
  System.add_item sys ~item:0 ~total:120 ();
  System.kill_forever sys 3;
  System.run_until sys 6.0;
  (match System.evacuate sys ~site:3 () with
  | Error e -> Alcotest.failf "evacuation refused: %s" e
  | Ok r -> Alcotest.(check int) "first run re-homes the fragment" 30 r.System.value_moved);
  (* Second invocation on the same victim: a clean no-op report. *)
  (match System.evacuate sys ~site:3 () with
  | Error e -> Alcotest.failf "second evacuation refused: %s" e
  | Ok r ->
    Alcotest.(check int) "nothing moved" 0 r.System.value_moved;
    Alcotest.(check int) "nothing delivered" 0 r.System.vms_delivered;
    Alcotest.(check int) "nothing stranded" 0 r.System.stranded);
  Alcotest.(check int) "total intact" 120 (System.total_at_sites sys ~item:0);
  no_violations "post-double-evacuation" sys

(* ------------------------------------------------------- property (QCheck) *)

(* A condemned-then-reinstated site comes back holding nothing (its value
   was evacuated), and conservation plus Vm exactly-once survive the whole
   evacuate -> reinstate -> rejoin -> rebalance cycle. *)
let prop_evacuate_reinstate_rejoin_rebalance =
  QCheck.Test.make ~count:20 ~name:"evacuate -> reinstate -> rejoin -> rebalance conserves"
    QCheck.(int_bound 9999)
    (fun seed ->
      let sys = System.create ~seed ~config:health_config ~n:4 () in
      System.add_item sys ~item:0 ~total:200 ();
      System.add_item sys ~item:1 ~total:80 ();
      let rng = Dvp_util.Rng.create (seed + 1) in
      for _ = 1 to 15 do
        let site = Dvp_util.Rng.int rng 4 in
        let item = Dvp_util.Rng.int rng 2 in
        let amount = 1 + Dvp_util.Rng.int rng 20 in
        let op = if Dvp_util.Rng.int rng 2 = 0 then Op.Incr amount else Op.Decr amount in
        System.exec sys (Txn.write ~site [ (item, op) ]) ~on_done:quiet
      done;
      System.run_until sys 1.0;
      let victim = Dvp_util.Rng.int rng 4 in
      System.crash_site sys victim;
      (* Long enough for every live peer to condemn the victim. *)
      System.run_for sys 5.0;
      (match System.evacuate sys ~site:victim () with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_reportf "evacuation refused: %s" e);
      (* Reinstate: the site rejoins as a member holding nothing. *)
      System.recover_site sys victim;
      System.run_for sys 1.0;
      let empty =
        List.for_all
          (fun item -> (System.fragments sys ~item).(victim) = 0)
          (System.items sys)
      in
      (* Rebalancing refills it from the hot survivors. *)
      ignore (System.rebalance sys);
      System.run_for sys 2.0;
      let refilled =
        List.exists
          (fun item -> (System.fragments sys ~item).(victim) > 0)
          (System.items sys)
      in
      empty && refilled && Oracle.check_system sys = [])

let () =
  Alcotest.run "dvp_membership"
    [
      ( "join",
        [
          Alcotest.test_case "seed handshake promotes" `Quick test_join_seeds_and_promotes;
          Alcotest.test_case "crash mid-join recovers" `Quick test_crash_mid_join_recovers;
        ] );
      ( "leave",
        [
          Alcotest.test_case "drain, shed, detach" `Quick test_leave_drains_and_detaches;
          Alcotest.test_case "refusals" `Quick test_leave_refusals;
          Alcotest.test_case "leave + rejoin exactly-once" `Quick
            test_leave_rejoin_exactly_once;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "hot to cold" `Quick test_rebalance_moves_hot_to_cold;
          Alcotest.test_case "auto policy" `Quick test_auto_rebalance_policy;
        ] );
      ( "epoch",
        [ Alcotest.test_case "stale Vm fenced" `Quick test_stale_epoch_fenced ] );
      ( "evacuation",
        [ Alcotest.test_case "idempotent" `Quick test_evacuate_idempotent ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_evacuate_reinstate_rejoin_rebalance ] );
    ]
