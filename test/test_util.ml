(* Tests for the dvp_util substrate: Rng, Heap, Dstats, Table. *)

open Dvp_util

let check_float = Alcotest.(check (float 1e-9))

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_in () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 false" false (Rng.bernoulli r 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 true" true (Rng.bernoulli r 1.0)
  done

let test_rng_bernoulli_mean () =
  let r = Rng.create 11 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to 0.3" true (abs_float (p -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 4.0
  done;
  let m = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (abs_float (m -. 4.0) < 0.2)

let test_rng_poisson_mean () =
  let r = Rng.create 17 in
  let check lambda =
    let sum = ref 0 in
    let n = 20_000 in
    for _ = 1 to n do
      sum := !sum + Rng.poisson r lambda
    done;
    let m = float_of_int !sum /. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "poisson mean near %g" lambda)
      true
      (abs_float (m -. lambda) < (0.05 *. lambda) +. 0.1)
  in
  check 0.5;
  check 5.0;
  check 50.0

let test_rng_zipf_support () =
  let r = Rng.create 19 in
  for _ = 1 to 5_000 do
    let v = Rng.zipf r 10 1.2 in
    Alcotest.(check bool) "in [1,10]" true (v >= 1 && v <= 10)
  done

let test_rng_zipf_skew () =
  (* With s=1.5 the first rank should dominate rank 10. *)
  let r = Rng.create 23 in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Rng.zipf r 10 1.5 in
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Alcotest.(check bool) "rank1 >> rank10" true (counts.(0) > 10 * counts.(9))

let test_rng_zipf_uniform () =
  let r = Rng.create 29 in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let v = Rng.zipf r 4 0.0 in
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (abs (c - 10_000) < 600))
    counts

let test_rng_split_independent () =
  let r = Rng.create 31 in
  let a = Rng.split r in
  let b = Rng.split r in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let r = Rng.create 37 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_rng_pick () =
  let r = Rng.create 41 in
  for _ = 1 to 100 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r []))

(* ----------------------------------------------------------------- Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  let r = Rng.create 43 in
  for _ = 1 to 1000 do
    ignore (Heap.add h ~priority:(Rng.float r 100.0) ())
  done;
  let prev = ref neg_infinity in
  let n = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (p, ()) ->
      Alcotest.(check bool) "nondecreasing" true (p >= !prev);
      prev := p;
      incr n;
      drain ()
  in
  drain ();
  Alcotest.(check int) "popped all" 1000 !n

let test_heap_fifo_ties () =
  let h = Heap.create () in
  ignore (Heap.add h ~priority:1.0 "a");
  ignore (Heap.add h ~priority:1.0 "b");
  ignore (Heap.add h ~priority:1.0 "c");
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_heap_cancel () =
  let h = Heap.create () in
  let _a = Heap.add h ~priority:1.0 "a" in
  let b = Heap.add h ~priority:2.0 "b" in
  let _c = Heap.add h ~priority:3.0 "c" in
  Alcotest.(check bool) "cancel live" true (Heap.cancel h b);
  Alcotest.(check bool) "cancel twice" false (Heap.cancel h b);
  Alcotest.(check int) "two left" 2 (Heap.length h);
  let order = List.map snd (Heap.to_list h) in
  Alcotest.(check (list string)) "b removed" [ "a"; "c" ] order

let test_heap_cancel_root () =
  let h = Heap.create () in
  let a = Heap.add h ~priority:1.0 "a" in
  ignore (Heap.add h ~priority:2.0 "b");
  Alcotest.(check bool) "cancel root" true (Heap.cancel h a);
  Alcotest.(check (option (pair (float 0.0) string)))
    "b at root" (Some (2.0, "b")) (Heap.peek h)

let test_heap_mem () =
  let h = Heap.create () in
  let a = Heap.add h ~priority:1.0 () in
  Alcotest.(check bool) "mem live" true (Heap.mem h a);
  ignore (Heap.pop h);
  Alcotest.(check bool) "mem popped" false (Heap.mem h a)

let test_heap_random_ops () =
  (* Randomised interleaving of add/cancel/pop, checking pops against a
     sorted-list reference model. *)
  let r = Rng.create 47 in
  let h = Heap.create () in
  let model = ref [] in
  (* model entries: (priority, seq, handle) *)
  let seq = ref 0 in
  for _ = 1 to 2000 do
    match Rng.int r 3 with
    | 0 ->
      let p = float_of_int (Rng.int r 50) in
      let handle = Heap.add h ~priority:p !seq in
      model := (p, !seq, handle) :: !model;
      incr seq
    | 1 -> (
      match !model with
      | (_, s, handle) :: rest when Rng.bool r ->
        ignore (Heap.cancel h handle);
        ignore s;
        model := rest
      | _ -> ())
    | _ -> (
      let expected =
        List.sort (fun (p1, s1, _) (p2, s2, _) -> compare (p1, s1) (p2, s2)) !model
      in
      match (Heap.pop h, expected) with
      | None, [] -> ()
      | Some (p, v), (ep, es, _) :: _ ->
        Alcotest.(check (float 0.0)) "priority agrees" ep p;
        Alcotest.(check int) "value agrees" es v;
        model := List.filter (fun (_, s, _) -> s <> es) !model
      | None, _ :: _ -> Alcotest.fail "heap empty but model non-empty"
      | Some _, [] -> Alcotest.fail "heap non-empty but model empty")
  done

let test_heap_clear () =
  let h = Heap.create () in
  ignore (Heap.add h ~priority:1.0 ());
  ignore (Heap.add h ~priority:2.0 ());
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.0) unit))) "no peek" None (Heap.peek h)

(* ---------------------------------------------------------- Timer wheel *)

module W = Timer_wheel

let test_wheel_fifo_ties () =
  let w = W.create () in
  ignore (W.add w ~priority:1.0 "a");
  ignore (W.add w ~priority:1.0 "b");
  ignore (W.add w ~priority:1.0 "c");
  let pop () = match W.pop w with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_wheel_cancel_mem_clear () =
  let w = W.create () in
  let _a = W.add w ~priority:1.0 "a" in
  let b = W.add w ~priority:2.0 "b" in
  let c = W.add w ~priority:3.0 "c" in
  Alcotest.(check bool) "cancel live" true (W.cancel w b);
  Alcotest.(check bool) "cancel twice" false (W.cancel w b);
  Alcotest.(check bool) "mem cancelled" false (W.mem w b);
  Alcotest.(check bool) "mem live" true (W.mem w c);
  Alcotest.(check int) "two left" 2 (W.length w);
  Alcotest.(check (list string)) "order skips tombstone" [ "a"; "c" ]
    (List.map snd (W.to_list w));
  W.clear w;
  Alcotest.(check bool) "empty" true (W.is_empty w);
  Alcotest.(check bool) "mem after clear" false (W.mem w c);
  Alcotest.(check bool) "next_at empty" true (W.next_at w = infinity)

let test_wheel_next_at_pop_min () =
  let w = W.create () in
  ignore (W.add w ~priority:0.7 11);
  ignore (W.add w ~priority:0.2 22);
  check_float "next_at = min" 0.2 (W.next_at w);
  Alcotest.(check bool) "due at horizon" true (W.has_due w ~horizon:0.2);
  Alcotest.(check bool) "not due before" false (W.has_due w ~horizon:0.1);
  Alcotest.(check int) "pop_min value" 22 (W.pop_min w);
  Alcotest.(check int) "then next" 11 (W.pop_min w);
  Alcotest.(check bool) "pop_min empty raises" true
    (try
       ignore (W.pop_min w);
       false
     with Invalid_argument _ -> true)

let test_wheel_ring_wrap () =
  (* A tiny ring (4 slots of width 1) forces entries many revolutions apart
     to share slots; order must still be global (priority, seq). *)
  let w = W.create ~slots:4 ~width:1.0 () in
  let ps = [ 0.5; 17.2; 3.9; 100.0; 4.1; 17.2; 0.6; 63.0 ] in
  List.iteri (fun i p -> ignore (W.add w ~priority:p i)) ps;
  let expected =
    List.sort compare (List.mapi (fun i p -> (p, i)) ps)
  in
  let rec drain acc =
    match W.pop w with None -> List.rev acc | Some pv -> drain (pv :: acc)
  in
  Alcotest.(check (list (pair (float 0.0) int))) "wrap order" expected (drain [])

(* The equivalence suite: the wheel must produce the exact (priority,
   fifo-order, value) stream of the reference Heap under any interleaving of
   add / cancel / pop — including adds whose priority lies "in the past"
   relative to already-popped entries (the wheel clamps their tick to the
   cursor but must still pop them by true priority). *)
let run_wheel_heap_script ~seed ~n_ops ~slots ~width () =
  let r = Rng.create seed in
  let h = Heap.create () in
  let w = W.create ~slots ~width () in
  let handles = ref [] in
  (* (heap handle, wheel handle) pairs, any order *)
  let n_handles = ref 0 in
  let seq = ref 0 in
  let recent = Array.make 8 0.0 in
  let pops_agree () =
    match (Heap.pop h, W.pop w) with
    | None, None -> ()
    | Some (hp, hv), Some (wp, wv) ->
      Alcotest.(check (float 0.0)) "pop priority" hp wp;
      Alcotest.(check int) "pop value" hv wv
    | None, Some _ -> Alcotest.fail "wheel non-empty, heap empty"
    | Some _, None -> Alcotest.fail "heap non-empty, wheel empty"
  in
  for _ = 1 to n_ops do
    (match Rng.int r 5 with
    | 0 | 1 ->
      (* Add: fresh uniform priority, or (1 in 4) an exact replay of a recent
         one to force FIFO ties. *)
      let p =
        if Rng.int r 4 = 0 then recent.(Rng.int r 8) else Rng.float r 100.0
      in
      recent.(Rng.int r 8) <- p;
      let hh = Heap.add h ~priority:p !seq in
      let wh = W.add w ~priority:p !seq in
      incr seq;
      handles := (hh, wh) :: !handles;
      incr n_handles
    | 2 -> (
      (* Cancel a random outstanding handle pair (may already be popped). *)
      match !handles with
      | [] -> ()
      | l ->
        let k = Rng.int r !n_handles in
        let hh, wh = List.nth l k in
        let ch = Heap.cancel h hh and cw = W.cancel w wh in
        Alcotest.(check bool) "cancel agrees" ch cw;
        Alcotest.(check bool) "mem agrees" (Heap.mem h hh) (W.mem w wh))
    | _ -> pops_agree ());
    Alcotest.(check int) "length agrees" (Heap.length h) (W.length w);
    let hnext = match Heap.peek h with Some (p, _) -> p | None -> infinity in
    (* plain [=]: Alcotest's float comparator is NaN on two infinities *)
    Alcotest.(check bool) "next_at agrees" true (hnext = W.next_at w)
  done;
  (* Drain both, alternating pop with the non-allocating next_at/pop_min
     path so both pop flavours are pinned to the heap stream. *)
  let flip = ref false in
  let continue = ref true in
  while !continue do
    if W.is_empty w then begin
      Alcotest.(check bool) "heap drained too" true (Heap.is_empty h);
      continue := false
    end
    else if !flip then begin
      flip := false;
      let wp = W.next_at w in
      let wv = W.pop_min w in
      match Heap.pop h with
      | Some (hp, hv) ->
        Alcotest.(check (float 0.0)) "drain priority" hp wp;
        Alcotest.(check int) "drain value" hv wv
      | None -> Alcotest.fail "heap drained early"
    end
    else begin
      flip := true;
      pops_agree ()
    end
  done

let test_wheel_vs_heap_script () =
  (* Three geometries: default; a coarse tiny ring (heavy slot sharing and
     revolution wrap); sub-tick widths (every entry lands near the cursor). *)
  run_wheel_heap_script ~seed:101 ~n_ops:3000 ~slots:1024 ~width:1e-3 ();
  run_wheel_heap_script ~seed:202 ~n_ops:2000 ~slots:4 ~width:2.0 ();
  run_wheel_heap_script ~seed:303 ~n_ops:2000 ~slots:16 ~width:40.0 ()

(* --------------------------------------------------------------- Dstats *)

let test_stats_basic () =
  let s = Dstats.create () in
  List.iter (Dstats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Dstats.count s);
  check_float "mean" 2.5 (Dstats.mean s);
  check_float "min" 1.0 (Dstats.min_value s);
  check_float "max" 4.0 (Dstats.max_value s);
  check_float "total" 10.0 (Dstats.total s);
  check_float "variance" (5.0 /. 3.0) (Dstats.variance s)

let test_stats_empty () =
  let s = Dstats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Dstats.mean s));
  Alcotest.(check bool) "var nan" true (Float.is_nan (Dstats.variance s))

let test_stats_merge () =
  let a = Dstats.create () and b = Dstats.create () and whole = Dstats.create () in
  let r = Rng.create 53 in
  for i = 1 to 1000 do
    let x = Rng.float r 10.0 in
    Dstats.add whole x;
    if i mod 2 = 0 then Dstats.add a x else Dstats.add b x
  done;
  let m = Dstats.merge a b in
  Alcotest.(check int) "count" (Dstats.count whole) (Dstats.count m);
  Alcotest.(check (float 1e-6)) "mean" (Dstats.mean whole) (Dstats.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Dstats.variance whole) (Dstats.variance m)

let test_stats_merge_empty () =
  let a = Dstats.create () and b = Dstats.create () in
  Dstats.add a 5.0;
  let m = Dstats.merge a b in
  check_float "mean survives" 5.0 (Dstats.mean m);
  let m2 = Dstats.merge b a in
  check_float "symmetric" 5.0 (Dstats.mean m2)

let test_sample_percentiles () =
  let s = Dstats.Sample.create () in
  for i = 1 to 100 do
    Dstats.Sample.add s (float_of_int i)
  done;
  check_float "median" 50.5 (Dstats.Sample.median s);
  check_float "p0" 1.0 (Dstats.Sample.percentile s 0.0);
  check_float "p100" 100.0 (Dstats.Sample.percentile s 100.0);
  Alcotest.(check bool) "p99 high" true (Dstats.Sample.percentile s 99.0 > 98.0)

let test_sample_unsorted_input () =
  let s = Dstats.Sample.create () in
  List.iter (Dstats.Sample.add s) [ 5.0; 1.0; 9.0; 3.0 ];
  check_float "max" 9.0 (Dstats.Sample.max_value s);
  Alcotest.(check (array (float 0.0)))
    "sorted" [| 1.0; 3.0; 5.0; 9.0 |]
    (Dstats.Sample.to_array s)

let test_sample_growth () =
  let s = Dstats.Sample.create () in
  for i = 1 to 10_000 do
    Dstats.Sample.add s (float_of_int (i mod 97))
  done;
  Alcotest.(check int) "count" 10_000 (Dstats.Sample.count s)

let test_histogram () =
  let h = Dstats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  Dstats.Histogram.add h (-1.0);
  (* clamps to first *)
  Dstats.Histogram.add h 0.5;
  Dstats.Histogram.add h 5.5;
  Dstats.Histogram.add h 42.0;
  (* clamps to last *)
  let counts = Dstats.Histogram.counts h in
  Alcotest.(check int) "first bucket" 2 counts.(0);
  Alcotest.(check int) "mid bucket" 1 counts.(5);
  Alcotest.(check int) "last bucket" 1 counts.(9);
  Alcotest.(check bool)
    "render non-empty" true
    (String.length (Dstats.Histogram.render h ~width:20) > 0)

(* ---------------------------------------------------------------- Table *)

let test_table_render () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "b"; "100" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.sub s 0 4 = "demo");
  Alcotest.(check bool) "mentions alpha" true (contains_sub s "alpha");
  Alcotest.(check bool) "mentions header" true (contains_sub s "name")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_formats () =
  Alcotest.(check string) "fint" "42" (Table.fint 42);
  Alcotest.(check string) "ffloat" "3.14" (Table.ffloat 3.14159);
  Alcotest.(check string) "ffloat dec" "3.1416" (Table.ffloat ~dec:4 3.14159);
  Alcotest.(check string) "nan" "-" (Table.ffloat nan);
  Alcotest.(check string) "fpct" "25.0%" (Table.fpct 0.25)

(* Property tests ------------------------------------------------------- *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> ignore (Heap.add h ~priority:p ())) priorities;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare priorities)

let prop_wheel_heap_bulk =
  QCheck.Test.make ~name:"wheel pops = heap pops (bulk load)" ~count:300
    QCheck.(list (float_bound_inclusive 100.0))
    (fun priorities ->
      let h = Heap.create () and w = W.create ~slots:16 ~width:0.25 () in
      List.iteri
        (fun i p ->
          ignore (Heap.add h ~priority:p i);
          ignore (W.add w ~priority:p i))
        priorities;
      let rec drain () =
        match (Heap.pop h, W.pop w) with
        | None, None -> true
        | Some (hp, hv), Some (wp, wv) -> hp = wp && hv = wv && drain ()
        | _ -> false
      in
      drain ())

let prop_wheel_heap_interleaved =
  (* Pops advance the wheel cursor mid-stream, so later adds with smaller
     priorities exercise the past-tick clamp; the streams must still agree. *)
  QCheck.Test.make ~name:"wheel = heap under interleaved add/pop" ~count:300
    QCheck.(list (pair bool (float_bound_inclusive 100.0)))
    (fun ops ->
      let h = Heap.create () and w = W.create ~slots:8 ~width:0.5 () in
      let i = ref 0 and ok = ref true in
      List.iter
        (fun (do_pop, p) ->
          if do_pop then (
            match (Heap.pop h, W.pop w) with
            | None, None -> ()
            | Some (hp, hv), Some (wp, wv) ->
              if not (hp = wp && hv = wv) then ok := false
            | _ -> ok := false)
          else begin
            ignore (Heap.add h ~priority:p !i);
            ignore (W.add w ~priority:p !i);
            incr i
          end)
        ops;
      let rec drain () =
        match (Heap.pop h, W.pop w) with
        | None, None -> true
        | Some (hp, hv), Some (wp, wv) -> hp = wp && hv = wv && drain ()
        | _ -> false
      in
      drain () && !ok)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Dstats.Sample.create () in
      List.iter (Dstats.Sample.add s) xs;
      let p25 = Dstats.Sample.percentile s 25.0
      and p50 = Dstats.Sample.percentile s 50.0
      and p75 = Dstats.Sample.percentile s 75.0 in
      p25 <= p50 && p50 <= p75)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Dstats.create () in
      List.iter (Dstats.add s) xs;
      Dstats.mean s >= Dstats.min_value s -. 1e-9
      && Dstats.mean s <= Dstats.max_value s +. 1e-9)

let () =
  Alcotest.run "dvp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "zipf support" `Quick test_rng_zipf_support;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "zipf uniform" `Quick test_rng_zipf_uniform;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_heap_cancel;
          Alcotest.test_case "cancel root" `Quick test_heap_cancel_root;
          Alcotest.test_case "mem" `Quick test_heap_mem;
          Alcotest.test_case "random ops vs model" `Quick test_heap_random_ops;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "timer_wheel",
        [
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "cancel/mem/clear" `Quick test_wheel_cancel_mem_clear;
          Alcotest.test_case "next_at/pop_min" `Quick test_wheel_next_at_pop_min;
          Alcotest.test_case "ring wrap" `Quick test_wheel_ring_wrap;
          Alcotest.test_case "equivalence script vs heap" `Quick
            test_wheel_vs_heap_script;
          QCheck_alcotest.to_alcotest prop_wheel_heap_bulk;
          QCheck_alcotest.to_alcotest prop_wheel_heap_interleaved;
        ] );
      ( "dstats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "unsorted input" `Quick test_sample_unsorted_input;
          Alcotest.test_case "sample growth" `Quick test_sample_growth;
          Alcotest.test_case "histogram" `Quick test_histogram;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_stats_mean_bounded;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
    ]
