(* Tests for dvp_baseline: the strict-2PL lock manager, 2PC/3PC single-copy
   and quorum-replicated systems, and the central escrow server. *)

module Engine = Dvp_sim.Engine
open Dvp_baseline

let result_testable =
  let pp ppf = function
    | Dvp.Site.Committed { read_value = None } -> Format.pp_print_string ppf "Committed"
    | Dvp.Site.Committed { read_value = Some v } ->
      Format.fprintf ppf "Committed(read=%d)" v
    | Dvp.Site.Aborted r ->
      Format.fprintf ppf "Aborted(%s)" (Dvp.Metrics.abort_reason_label r)
  in
  Alcotest.testable pp ( = )

let committed = Dvp.Site.Committed { read_value = None }

(* ------------------------------------------------------------- Lock_mgr *)

let test_lockmgr_grant_immediate () =
  let e = Engine.create () in
  let lm = Lock_mgr.create e in
  let got = ref false in
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun ok -> got := ok);
  Alcotest.(check bool) "granted now" true !got

let test_lockmgr_queue_and_promote () =
  let e = Engine.create () in
  let lm = Lock_mgr.create e in
  let order = ref [] in
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun _ -> order := 1 :: !order);
  Lock_mgr.acquire lm ~item:1 ~txn:(2, 0) ~timeout:1.0 (fun ok ->
      if ok then order := 2 :: !order);
  Lock_mgr.acquire lm ~item:1 ~txn:(3, 0) ~timeout:1.0 (fun ok ->
      if ok then order := 3 :: !order);
  Alcotest.(check int) "two waiting" 2 (Lock_mgr.waiting lm);
  Lock_mgr.release_all lm ~txn:(1, 0);
  Alcotest.(check (list int)) "fifo grant" [ 1; 2 ] (List.rev !order);
  Lock_mgr.release_all lm ~txn:(2, 0);
  Alcotest.(check (list int)) "third granted" [ 1; 2; 3 ] (List.rev !order)

let test_lockmgr_timeout_refuses () =
  let e = Engine.create () in
  let lm = Lock_mgr.create e in
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun _ -> ());
  let refused = ref false in
  Lock_mgr.acquire lm ~item:1 ~txn:(2, 0) ~timeout:0.1 (fun ok -> refused := not ok);
  Engine.run_until e 1.0;
  Alcotest.(check bool) "timed out" true !refused;
  (* The withdrawn waiter must not be granted later. *)
  Lock_mgr.release_all lm ~txn:(1, 0);
  Alcotest.(check bool) "still refused" true !refused

let test_lockmgr_reentrant () =
  let e = Engine.create () in
  let lm = Lock_mgr.create e in
  let count = ref 0 in
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun ok -> if ok then incr count);
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun ok -> if ok then incr count);
  Alcotest.(check int) "both granted" 2 !count

let test_lockmgr_clear_refuses_waiters () =
  let e = Engine.create () in
  let lm = Lock_mgr.create e in
  Lock_mgr.acquire lm ~item:1 ~txn:(1, 0) ~timeout:1.0 (fun _ -> ());
  let got = ref None in
  Lock_mgr.acquire lm ~item:1 ~txn:(2, 0) ~timeout:5.0 (fun ok -> got := Some ok);
  Lock_mgr.clear lm;
  Alcotest.(check (option bool)) "waiter refused" (Some false) !got

(* Property: whatever the interleaving of acquires (with random timeouts)
   and releases, at most one transaction ever believes it holds an item. *)
let prop_lockmgr_mutual_exclusion =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun txn item -> `Acquire (txn mod 8, item mod 3)) (int_bound 7) (int_bound 2));
          (3, map (fun txn -> `Release (txn mod 8)) (int_bound 7));
          (2, return `Tick);
        ])
  in
  QCheck.Test.make ~name:"lock manager mutual exclusion" ~count:150
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) op_gen))
    (fun ops ->
      let e = Engine.create () in
      let lm = Lock_mgr.create e in
      let holding : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
      (* (item) -> holder count; granted callbacks bump, releases clear *)
      let ok = ref true in
      let held_by_txn : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun op ->
          match op with
          | `Acquire (t, item) ->
            let txn = (t, 0) in
            Lock_mgr.acquire lm ~item ~txn ~timeout:0.3 (fun granted ->
                if granted then begin
                  let cur = Option.value ~default:0 (Hashtbl.find_opt holding (item, 0)) in
                  (* reentrant grants to the same txn are fine; distinct
                     holders are not *)
                  let mine =
                    Option.value ~default:[] (Hashtbl.find_opt held_by_txn t)
                  in
                  if not (List.mem item mine) then begin
                    if cur > 0 then ok := false;
                    Hashtbl.replace holding (item, 0) (cur + 1);
                    Hashtbl.replace held_by_txn t (item :: mine)
                  end
                end)
          | `Release t ->
            let txn = (t, 0) in
            let mine = Option.value ~default:[] (Hashtbl.find_opt held_by_txn t) in
            List.iter
              (fun item ->
                let cur = Option.value ~default:0 (Hashtbl.find_opt holding (item, 0)) in
                Hashtbl.replace holding (item, 0) (max 0 (cur - 1)))
              (List.sort_uniq compare mine);
            Hashtbl.remove held_by_txn t;
            Lock_mgr.release_all lm ~txn
          | `Tick -> Engine.run_until e (Engine.now e +. 0.1))
        ops;
      !ok)

(* ------------------------------------------------------- 2PC single-copy *)

let mk_trad ?(seed = 3) ?(config = Trad_site.default_config) ?link ?(n = 4)
    ?(items = [ (0, 100) ]) () =
  let sys = Trad_system.create ~seed ~config ?link ~n () in
  List.iter (fun (item, total) -> Trad_system.add_item sys ~item ~total) items;
  sys

let test_2pc_local_home_commit () =
  let sys = mk_trad () in
  (* item 0 homes at site 0; submit at site 0. *)
  let r = ref None in
  Trad_system.submit sys ~site:0 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "value updated" 90 (Trad_system.committed_value sys ~item:0)

let test_2pc_remote_commit () =
  let sys = mk_trad () in
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "home updated" 90 (Trad_system.committed_value sys ~item:0);
  Alcotest.(check bool) "messages flowed" true
    (Dvp.Metrics.messages (Trad_system.metrics sys) > 0)

let test_2pc_ineffective_aborts () =
  let sys = mk_trad () in
  let r = ref None in
  Trad_system.submit sys ~site:1 ~ops:[ (0, Dvp.Op.Decr 500) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "business abort"
    (Some (Dvp.Site.Aborted Dvp.Metrics.Ineffective))
    !r;
  Alcotest.(check int) "value untouched" 100 (Trad_system.committed_value sys ~item:0)

let test_2pc_multi_item_two_homes () =
  let sys = mk_trad ~items:[ (0, 50); (1, 50) ] () in
  let r = ref None in
  (* items 0 and 1 home at sites 0 and 1: two-participant 2PC. *)
  Trad_system.submit sys ~site:2
    ~ops:[ (0, Dvp.Op.Decr 5); (1, Dvp.Op.Incr 5) ]
    ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "item0" 45 (Trad_system.committed_value sys ~item:0);
  Alcotest.(check int) "item1" 55 (Trad_system.committed_value sys ~item:1)

let test_2pc_read () =
  let sys = mk_trad () in
  let r = ref None in
  Trad_system.submit_read sys ~site:3 ~item:0 ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "reads 100"
    (Some (Dvp.Site.Committed { read_value = Some 100 }))
    !r

let test_2pc_partition_aborts_remote () =
  let sys = mk_trad () in
  Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ];
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 3.0;
  (match !r with
  | Some (Dvp.Site.Aborted _) -> ()
  | other ->
    Alcotest.failf "expected abort, got %s"
      (match other with None -> "pending" | Some _ -> "commit"));
  Alcotest.(check int) "home untouched" 100 (Trad_system.committed_value sys ~item:0)

let test_2pc_partition_mid_protocol_blocks_participant () =
  (* Partition precisely between prepare and decision: the participant is in
     doubt and blocked until the partition heals — the paper's Section 2
     scenario made measurable. *)
  let sys = mk_trad ~seed:7 () in
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  (* With ~5-7 ms links: Exec ~t+6ms, ack ~12, prepare ~18, vote ~24,
     decision ~30.  Cut the network while the vote is in flight. *)
  ignore
    (Engine.schedule (Trad_system.engine sys) ~delay:0.020 (fun () ->
         Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ]));
  Trad_system.run_until sys 4.0;
  Alcotest.(check int) "participant in doubt" 1 (Trad_system.in_doubt_total sys);
  (* Heal: the status polling resolves the transaction. *)
  Trad_system.heal sys;
  Trad_system.run_until sys 8.0;
  Alcotest.(check int) "resolved after heal" 0 (Trad_system.in_doubt_total sys);
  let m = Trad_system.metrics sys in
  Alcotest.(check bool) "blocked episode near partition length" true
    (Dvp.Metrics.max_blocked m > 3.0)

let test_2pc_participant_crash_recovery_queries () =
  (* A participant that crashes while in doubt must contact the coordinator
     on recovery — traditional recovery is not independent. *)
  let sys = mk_trad ~seed:8 () in
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  (* Crash home site 0 while it is prepared (~between 18 and 30 ms). *)
  ignore
    (Engine.schedule (Trad_system.engine sys) ~delay:0.022 (fun () ->
         Trad_system.crash_site sys 0));
  Trad_system.run_until sys 2.0;
  Trad_system.recover_site sys 0;
  Trad_system.run_until sys 5.0;
  let m = Trad_system.metrics sys in
  Alcotest.(check bool) "recovery sent messages" true (Dvp.Metrics.recovery_messages m > 0);
  Alcotest.(check int) "no one left in doubt" 0 (Trad_system.in_doubt_total sys)

let test_2pc_crossing_transactions_resolve () =
  (* Two transactions lock their items in opposite orders across two home
     sites — the classic distributed deadlock.  The lock-wait timeout breaks
     it: at least one commits, none hangs. *)
  let sys = mk_trad ~items:[ (0, 100); (1, 100) ] ~seed:15 () in
  let r1 = ref None and r2 = ref None in
  (* items 0 and 1 home at sites 0 and 1. *)
  Trad_system.submit sys ~site:0
    ~ops:[ (0, Dvp.Op.Decr 1); (1, Dvp.Op.Decr 1) ]
    ~on_done:(fun x -> r1 := Some x);
  Trad_system.submit sys ~site:1
    ~ops:[ (1, Dvp.Op.Decr 1); (0, Dvp.Op.Decr 1) ]
    ~on_done:(fun x -> r2 := Some x);
  Trad_system.run_until sys 10.0;
  let resolved = function Some _ -> true | None -> false in
  (* The lock-wait timeout breaks the cycle: both transactions resolve (in
     the perfectly symmetric race, both become deadlock victims). *)
  Alcotest.(check bool) "both resolved, neither hangs" true (resolved !r1 && resolved !r2);
  Alcotest.(check int) "no locks stranded" 0 (Trad_system.in_doubt_total sys);
  (* The locks really were freed: a retry sails through. *)
  let r3 = ref None in
  Trad_system.submit sys ~site:0
    ~ops:[ (0, Dvp.Op.Decr 1); (1, Dvp.Op.Decr 1) ]
    ~on_done:(fun x -> r3 := Some x);
  Trad_system.run_until sys 14.0;
  Alcotest.(check (option result_testable)) "retry commits" (Some committed) !r3

(* ----------------------------------------------------------------- 3PC *)

let three_pc_config = { Trad_site.default_config with Trad_site.protocol = Trad_site.Three_phase }

let test_3pc_commit () =
  let sys = mk_trad ~config:three_pc_config () in
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "value" 90 (Trad_system.committed_value sys ~item:0)

let test_3pc_termination_unblocks () =
  (* Under the same mid-protocol partition that leaves 2PC blocked, 3PC's
     termination rule releases the participant... *)
  let sys = mk_trad ~seed:7 ~config:three_pc_config () in
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  ignore
    (Engine.schedule (Trad_system.engine sys) ~delay:0.020 (fun () ->
         Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ]));
  Trad_system.run_until sys 6.0;
  Alcotest.(check int) "not blocked" 0 (Trad_system.in_doubt_total sys);
  let m = Trad_system.metrics sys in
  Alcotest.(check bool) "blocked time bounded by termination timeout" true
    (Dvp.Metrics.max_blocked m <= three_pc_config.Trad_site.termination_timeout +. 0.3)

let test_3pc_partition_can_violate_atomicity () =
  (* ...but across many runs the unilateral decisions contradict the
     coordinator sometimes — Skeen's impossibility observed. *)
  let violations = ref 0 in
  for seed = 0 to 30 do
    let sys = mk_trad ~seed ~config:three_pc_config () in
    Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun _ -> ());
    (* Cut the network at a random point inside the protocol window. *)
    let cut = 0.012 +. (0.004 *. float_of_int (seed mod 8)) in
    ignore
      (Engine.schedule (Trad_system.engine sys) ~delay:cut (fun () ->
           Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ]));
    Trad_system.run_until sys 6.0;
    violations := !violations + Trad_system.inconsistencies sys
  done;
  Alcotest.(check bool) "at least one atomicity violation observed" true (!violations > 0)

(* --------------------------------------------------------------- quorum *)

let quorum_config = { Trad_site.default_config with Trad_site.placement = Trad_site.Replicated }

let test_quorum_commit_updates_majority () =
  let sys = mk_trad ~config:quorum_config () in
  let r = ref None in
  Trad_system.submit sys ~site:1 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "majority-visible value" 90 (Trad_system.committed_value sys ~item:0);
  let fresh =
    List.length
      (List.filter
         (fun i -> Trad_system.value_at sys ~site:i ~item:0 = 90)
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check bool) "majority updated" true (fresh >= 3)

let test_quorum_sequential_updates_see_latest () =
  let sys = mk_trad ~config:quorum_config ~seed:9 () in
  let ok = ref 0 in
  let submit_one () =
    Trad_system.submit sys ~site:(!ok mod 4)
      ~ops:[ (0, Dvp.Op.Decr 10) ]
      ~on_done:(fun x -> match x with Dvp.Site.Committed _ -> incr ok | _ -> ())
  in
  for i = 0 to 4 do
    ignore
      (Engine.schedule (Trad_system.engine sys)
         ~delay:(0.3 *. float_of_int i)
         submit_one)
  done;
  Trad_system.run_until sys 5.0;
  Alcotest.(check int) "all five commit" 5 !ok;
  Alcotest.(check int) "value reflects all" 50 (Trad_system.committed_value sys ~item:0)

let test_quorum_minority_unavailable_majority_works () =
  let sys = mk_trad ~config:quorum_config ~seed:10 () in
  Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ];
  let minority = ref None and majority = ref None in
  Trad_system.submit sys ~site:0 ~ops:[ (0, Dvp.Op.Decr 5) ]
    ~on_done:(fun x -> minority := Some x);
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 5) ]
    ~on_done:(fun x -> majority := Some x);
  Trad_system.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "minority no quorum"
    (Some (Dvp.Site.Aborted Dvp.Metrics.No_quorum))
    !minority;
  Alcotest.(check (option result_testable)) "majority commits" (Some committed) !majority

let test_quorum_survives_minority_crash () =
  (* With one of four replicas crashed, majorities still form. *)
  let sys = mk_trad ~config:quorum_config ~seed:12 () in
  Trad_system.crash_site sys 3;
  let r = ref None in
  Trad_system.submit sys ~site:1 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "still commits" (Some committed) !r;
  Alcotest.(check int) "value" 90 (Trad_system.committed_value sys ~item:0)

let test_3pc_coordinator_crash_is_safe () =
  (* Crash-only (no partition): whatever the termination rule decides must
     agree with the coordinator's log — 3PC's actual guarantee. *)
  let violations = ref 0 in
  let resolved = ref 0 in
  for seed = 0 to 15 do
    let sys = mk_trad ~seed ~config:three_pc_config () in
    Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun _ -> ());
    let cut = 0.012 +. (0.004 *. float_of_int (seed mod 8)) in
    ignore
      (Engine.schedule (Trad_system.engine sys) ~delay:cut (fun () ->
           Trad_system.crash_site sys 2));
    ignore
      (Engine.schedule_at (Trad_system.engine sys) ~at:4.0 (fun () ->
           Trad_system.recover_site sys 2));
    Trad_system.run_until sys 8.0;
    violations := !violations + Trad_system.inconsistencies sys;
    if Trad_system.in_doubt_total sys = 0 then incr resolved
  done;
  Alcotest.(check int) "no violations under crash-only failures" 0 !violations;
  Alcotest.(check int) "everything resolved" 16 !resolved

let test_quorum_with_3pc_commits () =
  (* The two config axes compose: replicated placement under the three-phase
     protocol. *)
  let config =
    {
      Trad_site.default_config with
      Trad_site.placement = Trad_site.Replicated;
      Trad_site.protocol = Trad_site.Three_phase;
    }
  in
  let sys = mk_trad ~config ~seed:14 () in
  let r = ref None in
  Trad_system.submit sys ~site:1 ~ops:[ (0, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "value" 90 (Trad_system.committed_value sys ~item:0)

(* --------------------------------------------------------- primary copy *)

let primary_config =
  { Trad_site.default_config with Trad_site.placement = Trad_site.Primary_copy 0 }

let test_primary_copy_routes_to_primary () =
  let sys = mk_trad ~config:primary_config ~items:[ (0, 100); (5, 100) ] () in
  let r = ref None in
  (* Item 5 would home at site 1 under single-copy; under primary-copy it
     lives at site 0. *)
  Trad_system.submit sys ~site:3 ~ops:[ (5, Dvp.Op.Decr 10) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 2.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "primary holds the value" 90
    (Trad_system.value_at sys ~site:0 ~item:5);
  Alcotest.(check int) "site 1 has nothing" 0 (Trad_system.value_at sys ~site:1 ~item:5)

let test_primary_copy_dies_with_primary () =
  let sys = mk_trad ~config:primary_config ~seed:13 () in
  Trad_system.crash_site sys 0;
  let r = ref None in
  Trad_system.submit sys ~site:2 ~ops:[ (0, Dvp.Op.Decr 1) ] ~on_done:(fun x -> r := Some x);
  Trad_system.run_until sys 3.0;
  Alcotest.(check (option result_testable)) "whole system unavailable"
    (Some (Dvp.Site.Aborted Dvp.Metrics.Timeout))
    !r

(* --------------------------------------------------------------- escrow *)

(* A tiny star network: clients at sites 1..n-1, the server at site 0. *)
let mk_escrow ?(seed = 5) ?(mode = Escrow.Escrow_locking) ?(n = 4) ~total () =
  let engine = Engine.create () in
  let rng = Dvp_util.Rng.create seed in
  let net = Dvp_net.Network.create (Dvp_sim.Substrate_des.of_engine engine) ~rng ~n () in
  let metrics = Dvp.Metrics.create () in
  let server =
    Escrow.server engine ~mode ~send:(fun ~dst msg -> Dvp_net.Network.send net ~src:0 ~dst msg) ()
  in
  Escrow.install server ~item:0 total;
  Dvp_net.Network.set_handler net 0 (fun ~src msg -> Escrow.handle_server server ~src msg);
  let clients =
    Array.init n (fun i ->
        if i = 0 then None
        else
          Some
            (Escrow.client engine ~self:i
               ~send:(fun msg -> Dvp_net.Network.send net ~src:i ~dst:0 msg)
               ~metrics ()))
  in
  Array.iteri
    (fun i c ->
      match c with
      | Some client -> Dvp_net.Network.set_handler net i (fun ~src:_ msg -> Escrow.handle_client client msg)
      | None -> ())
    clients;
  (engine, net, server, clients, metrics)

let client_exn clients i = match clients.(i) with Some c -> c | None -> assert false

let test_escrow_grant_and_commit () =
  let engine, _, server, clients, _ = mk_escrow ~total:100 () in
  let r = ref None in
  Escrow.request (client_exn clients 1) ~item:0 ~op:(Dvp.Op.Decr 10)
    ~on_done:(fun x -> r := Some x);
  Engine.run_until engine 1.0;
  Alcotest.(check (option result_testable)) "commits" (Some committed) !r;
  Alcotest.(check int) "value" 90 (Escrow.server_value server ~item:0);
  Alcotest.(check int) "no residual escrow" 0 (Escrow.escrowed server ~item:0)

let test_escrow_denies_oversubscription () =
  let engine, _, server, clients, _ = mk_escrow ~total:15 () in
  let results = ref [] in
  for i = 1 to 3 do
    Escrow.request (client_exn clients i) ~item:0 ~op:(Dvp.Op.Decr 10)
      ~on_done:(fun x -> results := x :: !results)
  done;
  Engine.run_until engine 2.0;
  let commits =
    List.length (List.filter (function Dvp.Site.Committed _ -> true | _ -> false) !results)
  in
  Alcotest.(check int) "exactly one fits" 1 commits;
  Alcotest.(check int) "value" 5 (Escrow.server_value server ~item:0);
  ignore server

let test_escrow_concurrent_when_feasible () =
  let engine, _, server, clients, _ = mk_escrow ~total:100 () in
  let commits = ref 0 in
  for i = 1 to 3 do
    Escrow.request (client_exn clients i) ~item:0 ~op:(Dvp.Op.Decr 10)
      ~on_done:(fun x -> match x with Dvp.Site.Committed _ -> incr commits | _ -> ())
  done;
  Engine.run_until engine 2.0;
  Alcotest.(check int) "all three commit" 3 !commits;
  Alcotest.(check int) "value" 70 (Escrow.server_value server ~item:0)

let test_escrow_server_down_times_out () =
  let engine, _, server, clients, _ = mk_escrow ~total:100 () in
  Escrow.set_server_up server false;
  let r = ref None in
  Escrow.request (client_exn clients 1) ~item:0 ~op:(Dvp.Op.Decr 10)
    ~on_done:(fun x -> r := Some x);
  Engine.run_until engine 2.0;
  Alcotest.(check (option result_testable)) "times out"
    (Some (Dvp.Site.Aborted Dvp.Metrics.Timeout))
    !r

let test_escrow_exclusive_serialises () =
  let engine, _, server, clients, _ =
    mk_escrow ~mode:Escrow.Exclusive_locking ~total:100 ()
  in
  let commits = ref 0 in
  for i = 1 to 3 do
    Escrow.request (client_exn clients i) ~item:0 ~op:(Dvp.Op.Decr 10)
      ~on_done:(fun x -> match x with Dvp.Site.Committed _ -> incr commits | _ -> ())
  done;
  Engine.run_until engine 3.0;
  Alcotest.(check int) "all commit eventually" 3 !commits;
  Alcotest.(check int) "value" 70 (Escrow.server_value server ~item:0)

let test_escrow_ttl_returns_abandoned () =
  (* A granted reservation whose finalise never arrives is returned by the
     server-side TTL. *)
  let engine, net, server, clients, _ = mk_escrow ~total:20 () in
  (* Cut the client->server link right after the reserve is sent so the
     finalise is lost. *)
  Escrow.request (client_exn clients 1) ~item:0 ~op:(Dvp.Op.Decr 10) ~on_done:(fun _ -> ());
  ignore
    (Engine.schedule engine ~delay:0.004 (fun () ->
         Dvp_net.Network.set_link_up net ~src:1 ~dst:0 false));
  Engine.run_until engine 1.0;
  Alcotest.(check int) "escrow held" 10 (Escrow.escrowed server ~item:0);
  Engine.run_until engine 4.0;
  Alcotest.(check int) "escrow returned by ttl" 0 (Escrow.escrowed server ~item:0);
  Alcotest.(check int) "value untouched" 20 (Escrow.server_value server ~item:0)

let () =
  Alcotest.run "dvp_baseline"
    [
      ( "lock_mgr",
        [
          Alcotest.test_case "grant immediate" `Quick test_lockmgr_grant_immediate;
          Alcotest.test_case "queue and promote" `Quick test_lockmgr_queue_and_promote;
          Alcotest.test_case "timeout refuses" `Quick test_lockmgr_timeout_refuses;
          Alcotest.test_case "reentrant" `Quick test_lockmgr_reentrant;
          Alcotest.test_case "clear refuses waiters" `Quick test_lockmgr_clear_refuses_waiters;
          QCheck_alcotest.to_alcotest prop_lockmgr_mutual_exclusion;
        ] );
      ( "two_pc",
        [
          Alcotest.test_case "local home commit" `Quick test_2pc_local_home_commit;
          Alcotest.test_case "remote commit" `Quick test_2pc_remote_commit;
          Alcotest.test_case "ineffective aborts" `Quick test_2pc_ineffective_aborts;
          Alcotest.test_case "multi-item two homes" `Quick test_2pc_multi_item_two_homes;
          Alcotest.test_case "read" `Quick test_2pc_read;
          Alcotest.test_case "partition aborts remote" `Quick test_2pc_partition_aborts_remote;
          Alcotest.test_case "partition mid-protocol blocks" `Quick
            test_2pc_partition_mid_protocol_blocks_participant;
          Alcotest.test_case "participant crash recovery queries" `Quick
            test_2pc_participant_crash_recovery_queries;
          Alcotest.test_case "crossing transactions resolve" `Quick
            test_2pc_crossing_transactions_resolve;
        ] );
      ( "three_pc",
        [
          Alcotest.test_case "commit" `Quick test_3pc_commit;
          Alcotest.test_case "termination unblocks" `Quick test_3pc_termination_unblocks;
          Alcotest.test_case "partition can violate atomicity" `Quick
            test_3pc_partition_can_violate_atomicity;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "commit updates majority" `Quick test_quorum_commit_updates_majority;
          Alcotest.test_case "sequential updates see latest" `Quick
            test_quorum_sequential_updates_see_latest;
          Alcotest.test_case "minority unavailable" `Quick
            test_quorum_minority_unavailable_majority_works;
          Alcotest.test_case "survives minority crash" `Quick
            test_quorum_survives_minority_crash;
          Alcotest.test_case "composes with 3pc" `Quick test_quorum_with_3pc_commits;
        ] );
      ( "primary_copy",
        [
          Alcotest.test_case "routes to primary" `Quick test_primary_copy_routes_to_primary;
          Alcotest.test_case "dies with primary" `Quick test_primary_copy_dies_with_primary;
        ] );
      ( "three_pc_safety",
        [
          Alcotest.test_case "coordinator crash is safe" `Quick
            test_3pc_coordinator_crash_is_safe;
        ] );
      ( "escrow",
        [
          Alcotest.test_case "grant and commit" `Quick test_escrow_grant_and_commit;
          Alcotest.test_case "denies oversubscription" `Quick test_escrow_denies_oversubscription;
          Alcotest.test_case "concurrent when feasible" `Quick test_escrow_concurrent_when_feasible;
          Alcotest.test_case "server down times out" `Quick test_escrow_server_down_times_out;
          Alcotest.test_case "exclusive serialises" `Quick test_escrow_exclusive_serialises;
          Alcotest.test_case "ttl returns abandoned" `Quick test_escrow_ttl_returns_abandoned;
        ] );
    ]
