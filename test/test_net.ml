(* Tests for dvp_net: link model, message fabric, sliding window, ordered
   broadcast. *)

open Dvp_net
module Engine = Dvp_sim.Engine
module Rng = Dvp_util.Rng

let mk ?(n = 4) ?(seed = 1) ?default () =
  let e = Engine.create () in
  let rng = Rng.create seed in
  let net = Network.create (Dvp_sim.Substrate_des.of_engine e) ~rng ~n ?default () in
  (e, net)

(* ------------------------------------------------------------ Linkstate *)

let test_link_defaults () =
  let l = Linkstate.create Linkstate.default in
  Alcotest.(check bool) "up" true (Linkstate.is_up l);
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "no drops" false (Linkstate.drops l rng);
    let d = Linkstate.sample_delay l rng in
    Alcotest.(check bool) "delay in band" true (d >= 0.005 && d < 0.0071)
  done

let test_link_down_drops () =
  let l = Linkstate.create Linkstate.default in
  Linkstate.set_up l false;
  let rng = Rng.create 1 in
  Alcotest.(check bool) "down drops" true (Linkstate.drops l rng)

let test_link_lossy () =
  let l = Linkstate.create (Linkstate.lossy 0.5) in
  let rng = Rng.create 2 in
  let drops = ref 0 in
  for _ = 1 to 10_000 do
    if Linkstate.drops l rng then incr drops
  done;
  Alcotest.(check bool) "about half dropped" true (abs (!drops - 5000) < 300)

(* -------------------------------------------------------------- Network *)

let test_network_delivery () =
  let e, net = mk () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src payload -> got := (src, payload) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got;
  Alcotest.(check int) "stats sent" 1 (Network.stats net).sent;
  Alcotest.(check int) "stats delivered" 1 (Network.stats net).delivered

let test_network_self_send_immediate () =
  let e, net = mk () in
  let got = ref false in
  Network.set_handler net 2 (fun ~src:_ _ -> got := true);
  Network.send net ~src:2 ~dst:2 "x";
  (* No engine run needed: local hand-off is synchronous. *)
  Alcotest.(check bool) "immediate" true !got;
  Alcotest.(check int) "not counted" 0 (Network.stats net).sent;
  ignore e

let test_network_down_site_drops () =
  let e, net = mk () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.set_site_up net 1 false;
  Network.send net ~src:0 ~dst:1 "lost";
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "dropped" 1 (Network.dropped (Network.stats net));
  (* The message left site 0 fine; it died in flight at the down receiver. *)
  Alcotest.(check int) "in-flight bucket" 1 (Network.stats net).dropped_inflight

let test_network_down_sender_drops () =
  let e, net = mk () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.set_site_up net 0 false;
  Network.send net ~src:0 ~dst:1 "lost";
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 !got

let test_network_partition_blocks () =
  let e, net = mk () in
  let got = ref 0 in
  Network.set_handler net 3 (fun ~src:_ _ -> incr got);
  Network.set_partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "0-3 partitioned" true (Network.partitioned net ~src:0 ~dst:3);
  Alcotest.(check bool) "0-1 together" false (Network.partitioned net ~src:0 ~dst:1);
  Network.send net ~src:0 ~dst:3 "blocked";
  Engine.run e;
  Alcotest.(check int) "cross-group dropped" 0 !got;
  Network.heal_partition net;
  Network.send net ~src:0 ~dst:3 "ok";
  Engine.run e;
  Alcotest.(check int) "after heal delivered" 1 !got

let test_network_partition_unmentioned_isolated () =
  let _, net = mk ~n:4 () in
  Network.set_partition net [ [ 0; 1 ] ];
  Alcotest.(check bool) "2 isolated from 3" true (Network.partitioned net ~src:2 ~dst:3);
  Alcotest.(check bool) "2 isolated from 0" true (Network.partitioned net ~src:2 ~dst:0)

let test_network_inflight_lost_on_partition () =
  (* A message already in flight is discarded if the partition happens before
     delivery. *)
  let e, net = mk () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.send net ~src:0 ~dst:1 "doomed";
  Network.set_partition net [ [ 0 ]; [ 1 ] ];
  Engine.run e;
  Alcotest.(check int) "in-flight discarded" 0 !got

let test_network_loss () =
  let e, net = mk ~seed:3 ~default:(Linkstate.lossy 0.5) () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 2000 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  Alcotest.(check bool) "about half arrive" true (abs (!got - 1000) < 150)

let test_network_duplication () =
  let e, net =
    mk ~seed:4 ~default:{ Linkstate.default with dup_prob = 1.0 } ()
  in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "two copies" 2 !got

let test_network_delay_ordering_jitter () =
  (* With jitter, messages can reorder; the fabric must not crash and must
     deliver everything on a loss-free link. *)
  let e, net =
    mk ~seed:5
      ~default:{ Linkstate.default with delay_jitter = 0.02 }
      ()
  in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ i -> got := i :: !got);
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check int) "all arrive" 50 (List.length !got);
  let sorted = List.sort compare !got in
  Alcotest.(check (list int)) "all distinct values" (List.init 50 (fun i -> i + 1)) sorted

(* --------------------------------------------------------------- Window *)

(* Wire two endpoints over a network with the given link params. *)
let wire_pair ?(seed = 7) ?(params = Linkstate.default) ?window ?rto () =
  let e = Engine.create () in
  let rng = Rng.create seed in
  let net = Network.create (Dvp_sim.Substrate_des.of_engine e) ~rng ~n:2 ~default:params () in
  let delivered_a = ref [] and delivered_b = ref [] in
  let ep_a = ref None and ep_b = ref None in
  let get = function Some x -> x | None -> assert false in
  let a =
    Window.create (Dvp_sim.Substrate_des.of_engine e)
      ~send:(fun f -> Network.send net ~src:0 ~dst:1 f)
      ~deliver:(fun p -> delivered_a := p :: !delivered_a)
      ?window ?rto ()
  in
  let b =
    Window.create (Dvp_sim.Substrate_des.of_engine e)
      ~send:(fun f -> Network.send net ~src:1 ~dst:0 f)
      ~deliver:(fun p -> delivered_b := p :: !delivered_b)
      ?window ?rto ()
  in
  ep_a := Some a;
  ep_b := Some b;
  Network.set_handler net 0 (fun ~src:_ f -> Window.handle_frame (get !ep_a) f);
  Network.set_handler net 1 (fun ~src:_ f -> Window.handle_frame (get !ep_b) f);
  (e, net, a, b, delivered_a, delivered_b)

let test_window_in_order_clean () =
  let e, _, a, _, _, delivered_b = wire_pair () in
  for i = 1 to 20 do
    Window.submit a i
  done;
  Engine.run_until e 5.0;
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> i + 1))
    (List.rev !delivered_b);
  Alcotest.(check bool) "sender idle" true (Window.idle a)

let test_window_lossy_delivery () =
  let e, _, a, _, _, delivered_b =
    wire_pair ~seed:11 ~params:(Linkstate.lossy 0.3) ()
  in
  for i = 1 to 50 do
    Window.submit a i
  done;
  Engine.run_until e 60.0;
  Alcotest.(check (list int)) "all delivered in order despite loss"
    (List.init 50 (fun i -> i + 1))
    (List.rev !delivered_b)

let test_window_duplicating_link () =
  let e, _, a, _, _, delivered_b =
    wire_pair ~seed:13 ~params:{ Linkstate.default with dup_prob = 0.5 } ()
  in
  for i = 1 to 30 do
    Window.submit a i
  done;
  Engine.run_until e 30.0;
  Alcotest.(check (list int)) "exactly once" (List.init 30 (fun i -> i + 1))
    (List.rev !delivered_b)

let test_window_bidirectional () =
  let e, _, a, b, delivered_a, delivered_b = wire_pair ~seed:17 () in
  for i = 1 to 10 do
    Window.submit a i;
    Window.submit b (100 + i)
  done;
  Engine.run_until e 10.0;
  Alcotest.(check (list int)) "a->b" (List.init 10 (fun i -> i + 1)) (List.rev !delivered_b);
  Alcotest.(check (list int)) "b->a"
    (List.init 10 (fun i -> 101 + i))
    (List.rev !delivered_a)

let test_window_backlog_respected () =
  let _, _, a, _, _, _ = wire_pair ~window:4 () in
  for i = 1 to 10 do
    Window.submit a i
  done;
  Alcotest.(check int) "window full" 4 (Window.unacked a);
  Alcotest.(check int) "rest queued" 6 (Window.backlog a)

let test_window_retransmission_counted () =
  let e, _, a, _, _, delivered_b =
    wire_pair ~seed:19 ~params:(Linkstate.lossy 0.4) ~rto:0.03 ()
  in
  for i = 1 to 20 do
    Window.submit a i
  done;
  Engine.run_until e 30.0;
  Alcotest.(check int) "all arrived" 20 (List.length !delivered_b);
  Alcotest.(check bool) "needed retransmissions" true (Window.frames_sent a > 20)

let test_window_link_outage_recovers () =
  (* Take the link down mid-stream; the window must deliver everything after
     it comes back. *)
  let e, net, a, _, _, delivered_b = wire_pair ~seed:23 ~rto:0.05 () in
  for i = 1 to 5 do
    Window.submit a i
  done;
  Engine.run_until e 1.0;
  Network.set_link_up net ~src:0 ~dst:1 false;
  for i = 6 to 10 do
    Window.submit a i
  done;
  Engine.run_until e 2.0;
  Alcotest.(check bool) "stalled during outage" true (List.length !delivered_b < 10);
  Network.set_link_up net ~src:0 ~dst:1 true;
  Engine.run_until e 10.0;
  Alcotest.(check (list int)) "caught up in order" (List.init 10 (fun i -> i + 1))
    (List.rev !delivered_b)

let test_window_stop_and_wait () =
  (* window = 1 degenerates to stop-and-wait and must still deliver
     everything in order over a lossy link. *)
  let e, _, a, _, _, delivered_b =
    wire_pair ~seed:29 ~params:(Linkstate.lossy 0.2) ~window:1 ~rto:0.03 ()
  in
  for i = 1 to 15 do
    Window.submit a i
  done;
  Alcotest.(check int) "one in flight" 1 (Window.unacked a);
  Alcotest.(check int) "rest queued" 14 (Window.backlog a);
  Engine.run_until e 30.0;
  Alcotest.(check (list int)) "in order" (List.init 15 (fun i -> i + 1))
    (List.rev !delivered_b)

let test_window_large_burst () =
  let e, _, a, _, _, delivered_b = wire_pair ~seed:31 ~window:16 () in
  for i = 1 to 500 do
    Window.submit a i
  done;
  Engine.run_until e 30.0;
  Alcotest.(check int) "all delivered" 500 (List.length !delivered_b);
  Alcotest.(check (list int)) "in order" (List.init 500 (fun i -> i + 1))
    (List.rev !delivered_b);
  Alcotest.(check bool) "idle at end" true (Window.idle a)

(* Property: for random loss rates and message counts, the window protocol
   delivers the exact submitted sequence. *)
let prop_window_exactly_once =
  QCheck.Test.make ~name:"window delivers exactly-once in-order" ~count:30
    QCheck.(triple (int_range 1 40) (int_range 0 40) (int_range 0 30))
    (fun (n_msgs, loss_pct, dup_pct) ->
      (* Loss, duplication, and enough jitter to reorder in flight. *)
      let params =
        {
          Linkstate.default with
          loss_prob = float_of_int loss_pct /. 100.0;
          dup_prob = float_of_int dup_pct /. 100.0;
          delay_jitter = 0.02;
        }
      in
      let e, _, a, _, _, delivered_b =
        wire_pair ~seed:(n_msgs + (100 * loss_pct) + (10_000 * dup_pct)) ~params ~rto:0.05 ()
      in
      for i = 1 to n_msgs do
        Window.submit a i
      done;
      Engine.run_until e 200.0;
      List.rev !delivered_b = List.init n_msgs (fun i -> i + 1))

(* ------------------------------------------------------------ Broadcast *)

let test_broadcast_total_order () =
  let e = Engine.create () in
  let bc = Broadcast.create (Dvp_sim.Substrate_des.of_engine e) ~n:3 () in
  let seen = Array.make 3 [] in
  for i = 0 to 2 do
    Broadcast.set_handler bc i (fun ~src ~seq payload ->
        seen.(i) <- (src, seq, payload) :: seen.(i))
  done;
  ignore (Broadcast.broadcast bc ~src:0 "a");
  ignore (Broadcast.broadcast bc ~src:2 "b");
  ignore (Broadcast.broadcast bc ~src:1 "c");
  Engine.run e;
  let order_at i = List.rev_map (fun (_, _, p) -> p) seen.(i) in
  Alcotest.(check (list string)) "site0 order" [ "a"; "b"; "c" ] (order_at 0);
  Alcotest.(check (list string)) "site1 same" (order_at 0) (order_at 1);
  Alcotest.(check (list string)) "site2 same" (order_at 0) (order_at 2)

let test_broadcast_includes_sender () =
  let e = Engine.create () in
  let bc = Broadcast.create (Dvp_sim.Substrate_des.of_engine e) ~n:2 () in
  let self = ref 0 in
  Broadcast.set_handler bc 0 (fun ~src ~seq:_ _ -> if src = 0 then incr self);
  Broadcast.set_handler bc 1 (fun ~src:_ ~seq:_ _ -> ());
  ignore (Broadcast.broadcast bc ~src:0 ());
  Engine.run e;
  Alcotest.(check int) "sender hears itself" 1 !self

let test_broadcast_seq_increases () =
  let e = Engine.create () in
  let bc = Broadcast.create (Dvp_sim.Substrate_des.of_engine e) ~n:2 () in
  Broadcast.set_handler bc 0 (fun ~src:_ ~seq:_ _ -> ());
  Broadcast.set_handler bc 1 (fun ~src:_ ~seq:_ _ -> ());
  let s1 = Broadcast.broadcast bc ~src:0 () in
  let s2 = Broadcast.broadcast bc ~src:1 () in
  Alcotest.(check bool) "stamps increase" true (s2 > s1);
  Alcotest.(check int) "four deliveries" 4 (Broadcast.messages_sent bc);
  Engine.run e

let () =
  Alcotest.run "dvp_net"
    [
      ( "linkstate",
        [
          Alcotest.test_case "defaults" `Quick test_link_defaults;
          Alcotest.test_case "down drops" `Quick test_link_down_drops;
          Alcotest.test_case "lossy" `Quick test_link_lossy;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "self-send immediate" `Quick test_network_self_send_immediate;
          Alcotest.test_case "down site drops" `Quick test_network_down_site_drops;
          Alcotest.test_case "down sender drops" `Quick test_network_down_sender_drops;
          Alcotest.test_case "partition blocks" `Quick test_network_partition_blocks;
          Alcotest.test_case "unmentioned isolated" `Quick
            test_network_partition_unmentioned_isolated;
          Alcotest.test_case "in-flight lost on partition" `Quick
            test_network_inflight_lost_on_partition;
          Alcotest.test_case "loss rate" `Quick test_network_loss;
          Alcotest.test_case "duplication" `Quick test_network_duplication;
          Alcotest.test_case "jitter reordering" `Quick test_network_delay_ordering_jitter;
        ] );
      ( "window",
        [
          Alcotest.test_case "in order clean" `Quick test_window_in_order_clean;
          Alcotest.test_case "lossy delivery" `Quick test_window_lossy_delivery;
          Alcotest.test_case "duplicating link" `Quick test_window_duplicating_link;
          Alcotest.test_case "bidirectional" `Quick test_window_bidirectional;
          Alcotest.test_case "backlog respected" `Quick test_window_backlog_respected;
          Alcotest.test_case "retransmissions counted" `Quick
            test_window_retransmission_counted;
          Alcotest.test_case "link outage recovers" `Quick test_window_link_outage_recovers;
          Alcotest.test_case "stop and wait (window=1)" `Quick test_window_stop_and_wait;
          Alcotest.test_case "large burst" `Quick test_window_large_burst;
          QCheck_alcotest.to_alcotest prop_window_exactly_once;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "total order" `Quick test_broadcast_total_order;
          Alcotest.test_case "includes sender" `Quick test_broadcast_includes_sender;
          Alcotest.test_case "stamps increase" `Quick test_broadcast_seq_increases;
        ] );
    ]
