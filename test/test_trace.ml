(* Tests for the observability layer: typed trace events and their JSONL /
   Chrome exporters, probe sampling, and the JSON metric/outcome export. *)

module Json = Dvp_util.Json
module Engine = Dvp_sim.Engine
module Trace = Dvp_sim.Trace
module Probe = Dvp_sim.Probe
module Spec = Dvp_workload.Spec
module Setup = Dvp_workload.Setup
module Runner = Dvp_workload.Runner

(* One of every event constructor, so the round-trip test covers the whole
   variant. *)
let every_event =
  [
    (0.1, Trace.Txn_begin { site = 0; txn = (3, 0); n_ops = 2 });
    (0.2, Trace.Lock_acquire { site = 0; txn = (3, 0); items = [ 0; 7 ] });
    (0.3, Trace.Request_sent { site = 0; dst = 1; txn = (3, 0); item = 7; amount = 12 });
    (0.4, Trace.Request_honored { site = 1; src = 0; txn = (3, 0); item = 7; amount = 12 });
    (0.5, Trace.Request_ignored { site = 1; src = 0; txn = (3, 0); item = 7; reason = "stale" });
    (0.6, Trace.Vm_created { site = 1; dst = 0; seq = 4; item = 7; amount = 12 });
    (0.7, Trace.Vm_retransmit { site = 1; dst = 0; seq = 4; item = 7; amount = 12 });
    (0.8, Trace.Vm_accepted { site = 0; src = 1; seq = 4; item = 7; amount = 12 });
    (0.9, Trace.Vm_dup { site = 0; src = 1; seq = 4 });
    (1.0, Trace.Lock_release { site = 0; txn = (3, 0) });
    (1.1, Trace.Txn_commit { site = 0; txn = (3, 0) });
    (1.2, Trace.Txn_abort { site = 1; txn = (5, 1); reason = "timeout" });
    (1.3, Trace.Crash { site = 2 });
    (1.4, Trace.Net_send { src = 0; dst = 1 });
    (1.5, Trace.Net_drop { src = 0; dst = 2 });
    (1.6, Trace.Recover { site = 2; redo = 9 });
    (1.7, Trace.Checkpoint { site = 2; log_length = 42 });
    (1.8, Trace.Storage_fault { site = 2; kind = "torn" });
    (1.9, Trace.Wal_repair { site = 2; dropped = 1 });
    (2.0, Trace.Note { category = "proactive"; message = "push 3 units" });
  ]

let test_jsonl_roundtrip () =
  let tr = Trace.create () in
  List.iter (fun (time, ev) -> Trace.emit tr ~time ev) every_event;
  let back = Trace.of_jsonl (Trace.to_jsonl tr) in
  Alcotest.(check int) "same count" (List.length every_event) (List.length back);
  List.iter2
    (fun (t1, e1) (t2, e2) ->
      Alcotest.(check (float 1e-9)) "time survives" t1 t2;
      Alcotest.(check bool) "event survives" true (e1 = e2))
    every_event back

let test_jsonl_skips_garbage () =
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 (Trace.Crash { site = 0 });
  let dump = "not json\n" ^ Trace.to_jsonl tr ^ "{\"type\":\"martian\"}\n" in
  Alcotest.(check int) "only the real event parses" 1 (List.length (Trace.of_jsonl dump))

let test_drop_count () =
  let tr = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.emit tr ~time:(float_of_int i) (Trace.Crash { site = i })
  done;
  Alcotest.(check int) "window is capacity" 8 (List.length (Trace.events tr));
  Alcotest.(check int) "drops counted" 12 (Trace.drop_count tr);
  (match Trace.events tr with
  | (t, _) :: _ -> Alcotest.(check (float 1e-9)) "oldest retained is 13" 13.0 t
  | [] -> Alcotest.fail "empty window");
  Trace.clear tr;
  Alcotest.(check int) "clear resets drops" 0 (Trace.drop_count tr)

(* Drive a real partitioned run and validate the Chrome export: the file
   must parse, use the envelope shape, and every duration slice must open
   and close in a balanced way per (pid, tid) lane. *)
let traced_run () =
  let trace = Trace.create () in
  let spec =
    {
      Spec.default with
      Spec.label = "trace-test";
      Spec.n_sites = 4;
      Spec.items = [ (0, 400) ];
      Spec.arrival_rate = 60.0;
      Spec.duration = 4.0;
      Spec.read_fraction = 0.02;
      Spec.seed = 77;
    }
  in
  let sys = Setup.dvp_system ~trace spec in
  let driver = Dvp_workload.Driver.of_dvp sys in
  let faults =
    Dvp_workload.Faultplan.merge
      (Dvp_workload.Faultplan.partition_window ~start:1.0 ~len:1.0 [ [ 0; 1 ]; [ 2; 3 ] ])
      (Dvp_workload.Faultplan.crash_cycle ~site:3 ~first:2.5 ~downtime:0.5)
  in
  let o = Runner.run driver spec ~faults () in
  (trace, o)

let test_chrome_export () =
  let trace, _ = traced_run () in
  match Json.parse (Trace.to_chrome trace) with
  | Error e -> Alcotest.fail ("chrome export is not valid JSON: " ^ e)
  | Ok json ->
    let events = Json.to_list (Option.value ~default:Json.Null (Json.member "traceEvents" json)) in
    Alcotest.(check bool) "has events" true (List.length events > 0);
    (* Balanced B/E per lane. *)
    let depth = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        let str k = Option.bind (Json.member k ev) Json.to_str in
        let num k = Option.bind (Json.member k ev) Json.to_int in
        let lane = (num "pid", num "tid") in
        match str "ph" with
        | Some "B" ->
          Hashtbl.replace depth lane (1 + Option.value ~default:0 (Hashtbl.find_opt depth lane))
        | Some "E" ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth lane) in
          Alcotest.(check bool) "E closes an open B" true (d > 0);
          Hashtbl.replace depth lane (d - 1)
        | _ -> ())
      events;
    Hashtbl.iter
      (fun _ d -> Alcotest.(check int) "every B closed" 0 d)
      depth;
    (* The run crossed a crash window: the instant events must show it. *)
    let phases =
      List.filter_map
        (fun ev ->
          match Option.bind (Json.member "ph" ev) Json.to_str with
          | Some "i" -> Option.bind (Json.member "name" ev) Json.to_str
          | _ -> None)
        events
    in
    Alcotest.(check bool) "crash instant present" true (List.mem "crash" phases)

let test_compat_categories () =
  let trace, _ = traced_run () in
  Alcotest.(check bool) "commits seen" true (Trace.count trace ~category:"commit" > 0);
  Alcotest.(check bool) "crash seen" true (Trace.count trace ~category:"crash" > 0);
  Alcotest.(check bool) "recover seen" true (Trace.count trace ~category:"recover" > 0);
  (* Typed and legacy views agree on cardinality. *)
  Alcotest.(check int) "entries = events"
    (List.length (Trace.events trace))
    (List.length (Trace.entries trace))

let test_probe_cadence () =
  let e = Engine.create () in
  let ticks = ref 0 in
  let p =
    Probe.start e ~period:0.5 ~sample:(fun now ->
        incr ticks;
        now)
  in
  Engine.run_until e 5.25;
  Alcotest.(check int) "ten samples in 5.25s at 0.5s period" 10 !ticks;
  Alcotest.(check int) "series matches" 10 (Probe.length p);
  List.iteri
    (fun i (t, v) ->
      Alcotest.(check (float 1e-9)) "sampled on the period" (0.5 *. float_of_int (i + 1)) t;
      Alcotest.(check (float 1e-9)) "sample saw the same clock" t v)
    (Probe.series p);
  Probe.stop p;
  Engine.run_until e 20.0;
  Alcotest.(check int) "stop ends sampling" 10 (Probe.length p)

let test_system_probe_conservation () =
  let spec =
    {
      Spec.default with
      Spec.label = "probe-test";
      Spec.n_sites = 4;
      Spec.items = [ (0, 1000) ];
      Spec.arrival_rate = 50.0;
      Spec.duration = 3.0;
      Spec.seed = 5;
    }
  in
  let sys = Setup.dvp_system spec in
  let probe = Dvp.System.start_probe sys ~every:0.25 in
  let driver = Dvp_workload.Driver.of_dvp sys in
  ignore (Runner.run driver spec ());
  Alcotest.(check bool) "sampled" true (Dvp_sim.Probe.length probe > 0);
  (* Between events N = Σᵢ Nᵢ + N_M; the probe samples between events, and
     only commits move the expected total, so each sample must conserve
     whatever the expected total was — we check the weaker, time-invariant
     form: fragments + in-flight stays non-negative and the series
     serializes. *)
  List.iter
    (fun (_, s) ->
      List.iter
        (fun (item, frags) ->
          let nm = List.assoc item s.Dvp.System.in_flight in
          Alcotest.(check bool) "no negative aggregate" true
            (Array.fold_left ( + ) 0 frags + nm >= 0))
        s.Dvp.System.fragments)
    (Dvp_sim.Probe.series probe);
  match Json.parse (Json.to_string (Dvp.System.probe_series_to_json probe)) with
  | Error e -> Alcotest.fail ("probe series JSON invalid: " ^ e)
  | Ok json ->
    let samples =
      Json.to_list (Option.value ~default:Json.Null (Json.member "samples" json))
    in
    Alcotest.(check int) "all samples exported" (Dvp_sim.Probe.length probe)
      (List.length samples)

let test_metrics_json_agrees_with_summary () =
  let spec =
    {
      Spec.default with
      Spec.label = "metrics-json";
      Spec.n_sites = 4;
      Spec.items = [ (0, 600) ];
      Spec.arrival_rate = 80.0;
      Spec.duration = 4.0;
      Spec.seed = 9;
    }
  in
  let o = Runner.run (Setup.dvp spec) spec () in
  let m = o.Runner.metrics in
  let json = Dvp.Metrics.to_json m in
  let rows = Dvp.Metrics.summary_rows m in
  let int_field k = Option.bind (Json.member k json) Json.to_int in
  (* Integer counters must agree exactly with the printed summary. *)
  List.iter
    (fun (row_key, json_key) ->
      let row = int_of_string (List.assoc row_key rows) in
      Alcotest.(check (option int)) row_key (Some row) (int_field json_key))
    [
      ("committed", "committed");
      ("aborted", "aborted");
      ("vm-created", "vm_created");
      ("vm-retransmissions", "vm_retransmissions");
      ("messages", "messages");
      ("log-forces", "log_forces");
    ];
  (* Latency percentiles must agree with the accessors. *)
  let lat = Option.value ~default:Json.Null (Json.member "latency" json) in
  List.iter
    (fun (k, v) ->
      match Option.bind (Json.member k lat) Json.to_float with
      | Some f -> Alcotest.(check (float 1e-9)) ("latency " ^ k) v f
      | None -> Alcotest.fail ("latency." ^ k ^ " missing"))
    [
      ("p50", Dvp.Metrics.latency_p50 m);
      ("p90", Dvp.Metrics.latency_p90 m);
      ("p99", Dvp.Metrics.latency_p99 m);
      ("max", Dvp.Metrics.latency_max m);
    ];
  (* And the whole outcome object must itself parse back. *)
  match Json.parse (Json.to_string (Runner.outcome_to_json o)) with
  | Error e -> Alcotest.fail ("outcome JSON invalid: " ^ e)
  | Ok back ->
    Alcotest.(check (option int)) "outcome.committed" (Some o.Runner.committed)
      (Option.bind (Json.member "committed" back) Json.to_int)

let () =
  Alcotest.run "dvp_trace"
    [
      ( "export",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl skips garbage" `Quick test_jsonl_skips_garbage;
          Alcotest.test_case "drop count" `Quick test_drop_count;
          Alcotest.test_case "chrome well-formed" `Quick test_chrome_export;
          Alcotest.test_case "compat categories" `Quick test_compat_categories;
        ] );
      ( "probe",
        [
          Alcotest.test_case "cadence" `Quick test_probe_cadence;
          Alcotest.test_case "system conservation" `Quick test_system_probe_conservation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "json agrees with summary" `Quick
            test_metrics_json_agrees_with_summary;
        ] );
    ]
