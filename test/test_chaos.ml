(* Tests for the chaos subsystem: schedule generation determinism, the
   invariant oracle (including that it actually catches violations), the
   schedule shrinker, and a bounded end-to-end torture run. *)

module Rng = Dvp_util.Rng
module Wal = Dvp_storage.Wal
module Faultplan = Dvp_workload.Faultplan
module Profile = Dvp_chaos.Profile
module Gen = Dvp_chaos.Gen
module Oracle = Dvp_chaos.Oracle
module Shrink = Dvp_chaos.Shrink
module Harness = Dvp_chaos.Harness

(* ------------------------------------------------------------ generation *)

let plan_fingerprint plan =
  List.map (fun e -> (e.Faultplan.at, Faultplan.action_label e.Faultplan.action)) plan

let test_gen_deterministic () =
  let p = Profile.bounded in
  let a = Gen.schedule ~seed:42 ~profile:p in
  let b = Gen.schedule ~seed:42 ~profile:p in
  Alcotest.(check bool) "same seed, same schedule" true
    (plan_fingerprint a = plan_fingerprint b);
  let c = Gen.schedule ~seed:43 ~profile:p in
  Alcotest.(check bool) "different seed, different schedule" false
    (plan_fingerprint a = plan_fingerprint c)

let test_gen_sorted_and_nonempty () =
  let plan = Gen.schedule ~seed:7 ~profile:Profile.bounded in
  Alcotest.(check bool) "chaos schedules are nonempty" true (plan <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Faultplan.at <= b.Faultplan.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "time-sorted" true (sorted plan)

let test_faultplan_random_deterministic () =
  let mk () =
    Faultplan.random ~rng:(Rng.create 9) ~n_sites:5 ~until:10.0 ~crash_rate:1.0
      ~partition_rate:0.5 ~loss_rate:0.5 ()
  in
  Alcotest.(check bool) "pure in the rng" true (plan_fingerprint (mk ()) = plan_fingerprint (mk ()))

let test_merge_keeps_equal_time_order () =
  (* A Storage_fault armed at the same instant as its Crash must stay before
     it through merges: the fault only fires if it is armed when the crash
     happens. *)
  let t = 1.5 in
  let plan =
    [
      Faultplan.at t (Faultplan.Storage_fault (0, Wal.Corrupt_tail));
      Faultplan.at t (Faultplan.Crash 0);
    ]
  in
  let noise = [ Faultplan.at 0.5 Faultplan.Heal; Faultplan.at 2.5 (Faultplan.Recover 0) ] in
  let merged = Faultplan.merge noise plan in
  let labels =
    List.filter_map
      (fun e ->
        if e.Faultplan.at = t then Some (Faultplan.action_label e.Faultplan.action) else None)
      merged
  in
  match labels with
  | [ sf; crash ] ->
    Alcotest.(check bool) "fault first" true
      (String.length sf >= 13 && String.sub sf 0 13 = "storage-fault");
    Alcotest.(check bool) "then crash" true
      (String.length crash >= 5 && String.sub crash 0 5 = "crash")
  | _ -> Alcotest.fail "expected exactly the two same-time events"

(* ---------------------------------------------------------------- oracle *)

let small_system () =
  let sys = Dvp.System.create ~seed:3 ~n:3 () in
  Dvp.System.add_item sys ~item:0 ~total:300 ();
  sys

let test_oracle_clean_system () =
  let sys = small_system () in
  Dvp.System.run_for sys 0.1;
  Alcotest.(check int) "no violations on a fresh system" 0
    (List.length (Oracle.check_system sys))

let test_oracle_catches_conjured_value () =
  let sys = small_system () in
  Dvp.System.run_for sys 0.1;
  (* Conjure 50 units out of thin air at site 1: no committed transaction
     explains them, so conservation must flag the item. *)
  Dvp.Site.install_fragment (Dvp.System.site sys 1) ~item:0 50;
  let violations = Oracle.check_system sys in
  Alcotest.(check bool) "conservation violated" true
    (List.exists (fun v -> v.Oracle.check = "conservation") violations)

let test_oracle_catches_double_accept () =
  let sys = small_system () in
  Dvp.System.run_for sys 0.1;
  (* Forge a stable log in which site 2 accepted seq 0 from site 1 twice —
     the double-credit the Vm machinery exists to prevent. *)
  let wal = Dvp.Site.wal (Dvp.System.site sys 2) in
  let accept =
    Dvp.Log_event.Vm_accept { peer = 1; seq = 0; item = 0; amount = 5; new_value = 105 }
  in
  Wal.append wal accept;
  Wal.append wal accept;
  let violations = Oracle.check_system sys in
  Alcotest.(check bool) "exactly-once violated" true
    (List.exists (fun v -> v.Oracle.check = "vm-exactly-once") violations)

let test_storage_fault_traced_end_to_end () =
  (* The armed-fault → crash → repair path, observed through the trace: the
     arming emits Storage_fault, the recovery that truncates the resulting
     bad tail emits Wal_repair. *)
  let trace = Dvp_sim.Trace.create () in
  let sys = Dvp.System.create ~seed:5 ~trace ~n:2 () in
  Dvp.System.add_item sys ~item:0 ~total:100 ();
  (* An unforced record for the fault to tear (Ack_progress is the one
     record the protocol legitimately leaves unforced). *)
  let wal = Dvp.Site.wal (Dvp.System.site sys 1) in
  Wal.append ~forced:false wal (Dvp.Log_event.Ack_progress { dst = 0; upto = -1 });
  Dvp.System.inject_wal_fault sys 1 Wal.Corrupt_tail;
  Dvp.System.crash_site sys 1;
  Dvp.System.recover_site sys 1;
  let events = List.map snd (Dvp_sim.Trace.events trace) in
  Alcotest.(check bool) "Storage_fault traced" true
    (List.exists
       (function Dvp_sim.Trace.Storage_fault { site = 1; _ } -> true | _ -> false)
       events);
  Alcotest.(check bool) "Wal_repair traced" true
    (List.exists
       (function Dvp_sim.Trace.Wal_repair { site = 1; dropped = 1 } -> true | _ -> false)
       events);
  Alcotest.(check int) "system still conserved" 0 (List.length (Oracle.check_system sys))

(* --------------------------------------------------------------- shrink *)

let ev t = Faultplan.at t (Faultplan.Crash 0)

let test_shrink_to_single_culprit () =
  let culprit = Faultplan.at 2.0 (Faultplan.Crash 7) in
  let plan = [ ev 0.0; ev 1.0; culprit; ev 3.0; ev 4.0; ev 5.0 ] in
  let fails p = List.memq culprit p in
  let shrunk = Shrink.minimize ~fails plan in
  Alcotest.(check int) "one event left" 1 (List.length shrunk);
  Alcotest.(check bool) "and it is the culprit" true (List.memq culprit shrunk)

let test_shrink_keeps_interacting_pair () =
  let a = Faultplan.at 1.0 (Faultplan.Crash 1) in
  let b = Faultplan.at 2.0 (Faultplan.Recover 1) in
  let plan = [ ev 0.0; a; ev 1.5; b; ev 3.0 ] in
  let fails p = List.memq a p && List.memq b p in
  let shrunk = Shrink.minimize ~fails plan in
  Alcotest.(check int) "pair survives" 2 (List.length shrunk)

let test_shrink_passing_plan_untouched () =
  let plan = [ ev 0.0; ev 1.0 ] in
  Alcotest.(check bool) "not a failure, not shrunk" true
    (Shrink.minimize ~fails:(fun _ -> false) plan == plan)

(* ------------------------------------------------------------ end to end *)

let test_run_seed_deterministic () =
  let profile = Profile.bounded in
  let a = Harness.run_seed ~profile ~seed:11 () in
  let b = Harness.run_seed ~profile ~seed:11 () in
  Alcotest.(check int) "same commits" a.Harness.committed b.Harness.committed;
  Alcotest.(check int) "same submissions" a.Harness.submitted b.Harness.submitted;
  Alcotest.(check int) "same recoveries" a.Harness.recoveries b.Harness.recoveries;
  Alcotest.(check int) "same repairs" a.Harness.wal_repairs b.Harness.wal_repairs

(* The tier-1 torture run: a handful of bounded seeds, every invariant
   checked after every recovery and at end of run.  The seeds are fixed, so
   this is deterministic; it doubles as the regression net for the whole
   crash/recovery path. *)
let test_bounded_torture () =
  let report = Harness.run ~first_seed:1 ~seeds:8 ~profile:Profile.bounded () in
  List.iter
    (fun (f : Harness.failure) ->
      List.iter
        (fun (at, viol) ->
          Printf.printf "seed %d t=%.3f %s: %s\n" f.Harness.result.Harness.seed at
            viol.Oracle.check viol.Oracle.detail)
        f.Harness.result.Harness.violations)
    report.Harness.failures;
  Alcotest.(check int) "zero invariant violations" 0 (List.length report.Harness.failures);
  Alcotest.(check bool) "the storm actually crashed sites" true
    (report.Harness.total_recoveries > 0);
  Alcotest.(check bool) "torn writes were detected and repaired" true
    (report.Harness.total_wal_repairs > 0);
  Alcotest.(check bool) "work still committed" true (report.Harness.total_committed > 0)

(* Churn schedules must contain membership events, and legacy profiles must
   keep their historical schedule streams (the churn generator draws from
   the rng only when the profile enables it). *)
let test_churn_schedule_shape () =
  let plan = Gen.schedule ~seed:5 ~profile:Profile.churn in
  let is_member_event e =
    match e.Faultplan.action with
    | Faultplan.Join _ | Faultplan.Leave _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "churn plans carry joins/leaves" true
    (List.exists is_member_event plan);
  List.iter
    (fun e ->
      match e.Faultplan.action with
      | Faultplan.Join s ->
        Alcotest.(check bool) "joins target spare slots" true
          (s >= Profile.churn.Profile.n_sites
          && s < Profile.churn.Profile.n_sites + Profile.churn.Profile.spare_sites)
      | _ -> ())
    plan;
  let legacy = Gen.schedule ~seed:5 ~profile:Profile.killer in
  Alcotest.(check bool) "legacy profiles stay churn-free" false
    (List.exists is_member_event legacy)

(* A few churn seeds end to end: joins, leaves, epoch bumps and channel
   restarts under background crash/partition/loss noise, with every
   invariant checked along the way.  Fixed seeds keep it deterministic. *)
let test_churn_torture () =
  let report = Harness.run ~first_seed:1 ~seeds:4 ~profile:Profile.churn () in
  List.iter
    (fun (f : Harness.failure) ->
      List.iter
        (fun (at, viol) ->
          Printf.printf "seed %d t=%.3f %s: %s\n" f.Harness.result.Harness.seed at
            viol.Oracle.check viol.Oracle.detail)
        f.Harness.result.Harness.violations)
    report.Harness.failures;
  Alcotest.(check int) "zero invariant violations" 0 (List.length report.Harness.failures);
  Alcotest.(check bool) "work still committed" true (report.Harness.total_committed > 0)

let test_failure_report_shape () =
  (* No real seed fails, so exercise the violation-report path on a
     synthesized failure: the rendering must carry the reproducing seed and
     the shrunk schedule, which is what makes a chaos failure actionable. *)
  let schedule =
    [
      Faultplan.at 1.0 (Faultplan.Storage_fault (2, Wal.Corrupt_tail));
      Faultplan.at 1.0 (Faultplan.Crash 2);
      Faultplan.at 1.7 (Faultplan.Recover 2);
    ]
  in
  let result =
    {
      Harness.seed = 99;
      schedule;
      violations = [ (1.701, { Oracle.check = "conservation"; detail = "item 0: off by 5" }) ];
      committed = 10;
      submitted = 12;
      recoveries = 1;
      wal_repairs = 1;
      repaired_records = 1;
      crashdump = None;
    }
  in
  let report =
    {
      Harness.profile = Profile.bounded;
      first_seed = 99;
      seeds = 1;
      failures = [ { Harness.result; shrunk = schedule } ];
      total_committed = 10;
      total_submitted = 12;
      total_recoveries = 1;
      total_wal_repairs = 1;
      total_repaired_records = 1;
    }
  in
  let text = Format.asprintf "%a" Harness.pp_report report in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names the seed" true (contains "--seed 99" text);
  Alcotest.(check bool) "prints the violation" true (contains "conservation" text);
  Alcotest.(check bool) "prints the schedule" true (contains "crash" text);
  match Harness.report_to_json report with
  | Dvp_util.Json.Obj fields ->
    Alcotest.(check bool) "json has failures" true (List.mem_assoc "failures" fields)
  | _ -> Alcotest.fail "report_to_json must be an object"

let () =
  Alcotest.run "dvp_chaos"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic in the seed" `Quick test_gen_deterministic;
          Alcotest.test_case "sorted and nonempty" `Quick test_gen_sorted_and_nonempty;
          Alcotest.test_case "faultplan.random deterministic" `Quick
            test_faultplan_random_deterministic;
          Alcotest.test_case "merge keeps same-time order" `Quick
            test_merge_keeps_equal_time_order;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean system" `Quick test_oracle_clean_system;
          Alcotest.test_case "catches conjured value" `Quick test_oracle_catches_conjured_value;
          Alcotest.test_case "catches double accept" `Quick test_oracle_catches_double_accept;
          Alcotest.test_case "storage fault traced end to end" `Quick
            test_storage_fault_traced_end_to_end;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "single culprit" `Quick test_shrink_to_single_culprit;
          Alcotest.test_case "interacting pair survives" `Quick test_shrink_keeps_interacting_pair;
          Alcotest.test_case "passing plan untouched" `Quick test_shrink_passing_plan_untouched;
        ] );
      ( "harness",
        [
          Alcotest.test_case "run_seed deterministic" `Quick test_run_seed_deterministic;
          Alcotest.test_case "failure report shape" `Quick test_failure_report_shape;
          Alcotest.test_case "churn schedule shape" `Quick test_churn_schedule_shape;
          Alcotest.test_case "bounded torture" `Slow test_bounded_torture;
          Alcotest.test_case "churn torture" `Slow test_churn_torture;
        ] );
    ]
