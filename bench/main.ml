(* Benchmark harness entry point.

     dune exec bench/main.exe            # run every experiment + micro-benches
     dune exec bench/main.exe -- E3 E5   # run selected experiments
     dune exec bench/main.exe -- E1 --json        # also write BENCH_E1.json
     dune exec bench/main.exe -- E1 --out results # JSON files into results/
     dune exec bench/main.exe -- micro   # micro-benchmarks only
     dune exec bench/main.exe -- list    # list experiment ids

   The experiments (E1-E10) regenerate the evaluation described in
   DESIGN.md; EXPERIMENTS.md records the expected vs measured shapes.  With
   [--json], every Runner outcome is also collected and written as one
   BENCH_<id>.json file per experiment (see bench/report.mli). *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false in
  let rec parse_flags acc = function
    | [] -> List.rev acc
    | "--json" :: rest ->
      if not (Report.is_enabled ()) then Report.enable ();
      parse_flags acc rest
    | "--out" :: dir :: rest ->
      Report.enable ~dir ();
      parse_flags acc rest
    | "--quick" :: rest ->
      quick := true;
      parse_flags acc rest
    | a :: rest -> parse_flags (a :: acc) rest
  in
  let args = parse_flags [] args in
  let quick = !quick in
  let ids = List.map fst Experiments.all in
  (match args with
  | [ "list" ] ->
    List.iter print_endline ids;
    print_endline "micro"
  | [] ->
    print_endline "DvP and Virtual Messages: full experiment suite";
    print_endline "(Soparkar & Silberschatz, PODS 1990 - constructed evaluation)";
    List.iter (fun (_, f) -> f ()) Experiments.all;
    Micro.run ~quick ()
  | picks ->
    List.iter
      (fun pick ->
        if pick = "micro" then Micro.run ~quick ()
        else
          match List.assoc_opt (String.uppercase_ascii pick) Experiments.all with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown experiment %S (try: %s, micro)\n" pick
              (String.concat ", " ids);
            exit 1)
      picks);
  Report.flush ()
