(* Machine-readable experiment output.

   The experiment functions print human tables; when the harness is invoked
   with [--json] they additionally stream every Runner outcome through this
   collector, which groups them per experiment and writes one
   BENCH_<id>.json file per experiment at exit.  Each file holds

     { "experiment": "E1", "title": "...", "runs": [ <outcome>, ... ] }

   where each run is [Runner.outcome_to_json] plus any sweep parameters the
   experiment attached via [~extra]. *)

module Json = Dvp.Util.Json

type exp = { id : string; title : string; mutable runs : Json.t list }

let enabled = ref false

let out_dir = ref "."

let experiments : exp list ref = ref []

let current : exp option ref = ref None

let enable ?(dir = ".") () =
  enabled := true;
  out_dir := dir

let is_enabled () = !enabled

let begin_section ~id ~title =
  if !enabled then begin
    let e = { id; title; runs = [] } in
    experiments := e :: !experiments;
    current := Some e
  end

let record ?(extra = []) (o : Dvp.Runner.outcome) =
  if !enabled then
    match !current with
    | None -> ()
    | Some e ->
      let run =
        match Dvp.Runner.outcome_to_json o with
        | Json.Obj fields -> Json.Obj (extra @ fields)
        | j -> j
      in
      e.runs <- run :: e.runs

let record_json j =
  if !enabled then
    match !current with None -> () | Some e -> e.runs <- j :: e.runs

let flush () =
  if !enabled then begin
    List.iter
      (fun e ->
        let path = Filename.concat !out_dir (Printf.sprintf "BENCH_%s.json" e.id) in
        let json =
          Json.Obj
            [
              ("experiment", Json.String e.id);
              ("title", Json.String e.title);
              ("runs", Json.List (List.rev e.runs));
            ]
        in
        let oc = open_out path in
        output_string oc (Json.to_string_pretty json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path)
      (List.rev !experiments);
    experiments := [];
    current := None
  end
