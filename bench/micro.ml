(* Bechamel micro-benchmarks (M1-M5): the per-operation costs underneath the
   experiment tables — forced log appends, the local-commit fast path, event
   queue operations, lock-table operations, and the Π algebra. *)

open Bechamel
open Toolkit

let m1_wal_append =
  let wal = Dvp.Storage.Wal.create () in
  let record =
    Dvp.Log_event.Txn_commit
      { txn = (1, 0); actions = [ Dvp.Log_event.Set_fragment { item = 0; value = 42 } ] }
  in
  Test.make ~name:"m1-wal-append-force" (Staged.stage (fun () -> Dvp.Storage.Wal.append wal record))

let m2_local_commit =
  (* The paper's fast path: a write-only transaction at one site — lock,
     force commit record, apply, unlock.  No messages. *)
  let sys = Dvp.System.create ~seed:1 ~n:2 () in
  Dvp.System.add_item sys ~item:0 ~total:1000 ();
  Test.make ~name:"m2-local-txn-commit"
    (Staged.stage (fun () ->
         Dvp.System.exec sys (Dvp.Txn.write ~site:0 [ (0, Dvp.Op.Incr 1) ]) ~on_done:(fun _ -> ())))

let m3_heap =
  let h = Dvp.Util.Heap.create () in
  for i = 1 to 1024 do
    ignore (Dvp.Util.Heap.add h ~priority:(float_of_int i) i)
  done;
  let next = ref 1025.0 in
  Test.make ~name:"m3-heap-push-pop"
    (Staged.stage (fun () ->
         ignore (Dvp.Util.Heap.add h ~priority:!next 0);
         next := !next +. 1.0;
         ignore (Dvp.Util.Heap.pop h)))

let m4_locks =
  let lt = Dvp.Lock_table.create () in
  let counter = ref 0 in
  Test.make ~name:"m4-lock-acquire-release"
    (Staged.stage (fun () ->
         incr counter;
         let txn = (!counter, 0) in
         ignore (Dvp.Lock_table.try_acquire_all lt ~items:[ 1; 2; 3 ] ~txn);
         ignore (Dvp.Lock_table.release_all lt ~txn)))

let m5_value_algebra =
  Test.make ~name:"m5-pi-split-merge"
    (Staged.stage (fun () ->
         let parts = Dvp.Value.split_even 100_000 ~parts:16 in
         ignore (Dvp.Value.pi parts)))

let m6_checkpoint =
  (* Snapshot + truncate of a site with a realistic item count. *)
  let sys = Dvp.System.create ~seed:2 ~n:4 () in
  for item = 0 to 31 do
    Dvp.System.add_item sys ~item ~total:1000 ()
  done;
  let site = Dvp.System.site sys 0 in
  Test.make ~name:"m6-site-checkpoint" (Staged.stage (fun () -> Dvp.Site.checkpoint site))

(* A WAL holding [depth] stable records — the shape recovery and the chaos
   oracle read over and over. *)
let deep_wal depth =
  let wal = Dvp.Storage.Wal.create () in
  for i = 0 to depth - 1 do
    Dvp.Storage.Wal.append ~forced:(i mod 64 = 0) wal
      (Dvp.Log_event.Txn_commit
         { txn = (i, 0); actions = [ Dvp.Log_event.Set_fragment { item = i mod 8; value = i } ] })
  done;
  Dvp.Storage.Wal.force wal;
  wal

let m7_wal_corrupt_tail =
  (* The chaos oracle calls this after every recovery; it must not rescan
     (and re-checksum) the whole log. *)
  let wal = deep_wal 10_000 in
  Test.make ~name:"m7-wal-corrupt-tail-10k"
    (Staged.stage (fun () -> ignore (Dvp.Storage.Wal.corrupt_tail wal)))

let m7_wal_replay =
  (* A full oldest-first scan at depth — what recovery replay pays. *)
  let wal = deep_wal 10_000 in
  Test.make ~name:"m7-wal-replay-10k"
    (Staged.stage (fun () ->
         let n = ref 0 in
         Dvp.Storage.Wal.iter wal (fun _ -> incr n);
         ignore !n))

(* A Vm engine with [outstanding] unacknowledged messages to an unreachable
   destination: the retransmission scan's worst case. *)
let vm_with_outstanding ~outstanding =
  let engine = Dvp.Engine.create () in
  let wal = Dvp.Storage.Wal.create () in
  let metrics = Dvp.Metrics.create () in
  let vm =
    Dvp.Vm.create (Dvp.Substrate_des.of_engine engine) ~n:2 ~self:0 ~wal
      ~send:(fun ~dst:_ _ -> ())
      ~try_credit:(fun ~peer:_ ~item:_ ~amount:_ ~reply_to:_ -> None)
      ~ts_counter:(fun () -> 0)
      ~metrics ()
  in
  Dvp.Vm.start vm;
  for i = 0 to outstanding - 1 do
    Dvp.Vm.send_value vm ~dst:1 ~item:(i mod 16) ~amount:1 ~new_local:0 ()
  done;
  (engine, vm)

let m8_retransmit_scan =
  (* One retransmission-timer firing with 10k outstanding Vm.  The engine
     advances one period per benchmark iteration, so each run measures one
     scan (plus whatever it decides to send). *)
  let engine, _vm = vm_with_outstanding ~outstanding:10_000 in
  Test.make ~name:"m8-vm-retransmit-scan-10k"
    (Staged.stage (fun () ->
         Dvp.Engine.run_until engine (Dvp.Engine.now engine +. 0.15)))

let m8_outstanding_read =
  let _engine, vm = vm_with_outstanding ~outstanding:10_000 in
  Test.make ~name:"m8-vm-outstanding-read-10k"
    (Staged.stage (fun () -> ignore (Dvp.Vm.outstanding_to vm 1)))

(* A receiving Vm that accepts every credit — for measuring the delivery
   path: 16 fragments as one Vm_batch vs 16 separate Vm_data messages. *)
let receiving_vm () =
  let engine = Dvp.Engine.create () in
  let wal = Dvp.Storage.Wal.create () in
  let metrics = Dvp.Metrics.create () in
  let frag = ref 0 in
  let vm =
    Dvp.Vm.create (Dvp.Substrate_des.of_engine engine) ~n:2 ~self:0 ~wal
      ~send:(fun ~dst:_ _ -> ())
      ~try_credit:(fun ~peer:_ ~item:_ ~amount ~reply_to:_ ->
        frag := !frag + amount;
        Some !frag)
      ~ts_counter:(fun () -> 0)
      ~metrics ()
  in
  vm

let m9_batch_delivery =
  let vm = receiving_vm () in
  let next = ref 0 in
  Test.make ~name:"m9-vm-batch-deliver-16"
    (Staged.stage (fun () ->
         let base = !next in
         next := base + 16;
         let frags =
           List.init 16 (fun i ->
               { Dvp.Proto.seq = base + i; item = i mod 4; amount = 1; reply_to = None })
         in
         Dvp.Vm.handle_batch vm ~src:1 ~frags ~ack_upto:(-1)))

let m9_single_delivery =
  let vm = receiving_vm () in
  let next = ref 0 in
  Test.make ~name:"m9-vm-single-deliver-16"
    (Staged.stage (fun () ->
         let base = !next in
         next := base + 16;
         for i = 0 to 15 do
           Dvp.Vm.handle_data vm ~src:1 ~seq:(base + i) ~item:(i mod 4) ~amount:1 ~reply_to:None
             ~ack_upto:(-1)
         done))

(* The event-queue pair at scale: steady-state push/pop with 10^5 pending
   timers, on the reference heap and on the wheel that replaced it. *)
let m10_heap_100k =
  let h = Dvp.Util.Heap.create () in
  for i = 1 to 100_000 do
    ignore (Dvp.Util.Heap.add h ~priority:(0.001 *. float_of_int i) i)
  done;
  let next = ref 101.0 in
  Test.make ~name:"m10-heap-push-pop-100k"
    (Staged.stage (fun () ->
         ignore (Dvp.Util.Heap.add h ~priority:!next 0);
         next := !next +. 0.001;
         ignore (Dvp.Util.Heap.pop h)))

let m10_wheel_100k =
  let w = Dvp.Util.Timer_wheel.create () in
  for i = 1 to 100_000 do
    ignore (Dvp.Util.Timer_wheel.add w ~priority:(0.001 *. float_of_int i) i)
  done;
  let next = ref 101.0 in
  Test.make ~name:"m10-wheel-push-pop-100k"
    (Staged.stage (fun () ->
         ignore (Dvp.Util.Timer_wheel.add w ~priority:!next 0);
         next := !next +. 0.001;
         ignore (Dvp.Util.Timer_wheel.pop w)))

let m10_wheel_cancel =
  (* The O(1) tombstone path — what every rearmed retransmission timer pays. *)
  let w = Dvp.Util.Timer_wheel.create () in
  for i = 1 to 100_000 do
    ignore (Dvp.Util.Timer_wheel.add w ~priority:(0.001 *. float_of_int i) i)
  done;
  let next = ref 101.0 in
  Test.make ~name:"m10-wheel-add-cancel-100k"
    (Staged.stage (fun () ->
         let h = Dvp.Util.Timer_wheel.add w ~priority:!next 0 in
         next := !next +. 0.001;
         ignore (Dvp.Util.Timer_wheel.cancel w h)))

(* Idle-installation overhead: one simulated second of a 256-site system with
   nothing to do (checkpoint daemon armed, all sites quiet).  The
   activity-driven daemons make this O(active), so it should cost close to
   nothing; the synthetic global-tick baseline below is what the old design
   paid — a daemon touching all 256 sites every 50 ms regardless. *)
let m11_idle_sites =
  let sys = Dvp.System.create ~seed:3 ~n:256 () in
  Dvp.System.add_item sys ~item:0 ~total:25_600 ();
  Dvp.System.start_periodic_checkpoints sys ~every:0.1;
  Dvp.System.run_until sys 1.0;
  Test.make ~name:"m11-idle-sites-256-1s"
    (Staged.stage (fun () -> Dvp.System.run_until sys (Dvp.System.now sys +. 1.0)))

let m11_global_tick =
  let engine = Dvp.Engine.create () in
  let sites = Array.make 256 1 in
  let acc = ref 0 in
  let rec tick () =
    for i = 0 to Array.length sites - 1 do
      acc := !acc + sites.(i)
    done;
    ignore (Dvp.Engine.schedule engine ~delay:0.05 tick)
  in
  ignore (Dvp.Engine.schedule engine ~delay:0.05 tick);
  Test.make ~name:"m11-global-tick-256-1s"
    (Staged.stage (fun () -> Dvp.Engine.run_until engine (Dvp.Engine.now engine +. 1.0)))

let tests =
  [
    m1_wal_append;
    m2_local_commit;
    m3_heap;
    m4_locks;
    m5_value_algebra;
    m6_checkpoint;
    m7_wal_corrupt_tail;
    m7_wal_replay;
    m8_retransmit_scan;
    m8_outstanding_read;
    m9_batch_delivery;
    m9_single_delivery;
    m10_heap_100k;
    m10_wheel_100k;
    m10_wheel_cancel;
    m11_idle_sites;
    m11_global_tick;
  ]

(* m12: allocation per simulator event, from Gc.allocated_bytes over a loaded
   64-site run.  Not a Bechamel test — the interesting number is bytes/event
   across a whole workload (hot paths plus daemons), not ns of one closure. *)
let m12_alloc_per_event () =
  let n = 64 in
  let sys = Dvp.System.create ~seed:11 ~n () in
  Dvp.System.add_item sys ~item:0 ~total:(n * 1000) ();
  let sub = Dvp.System.sub sys in
  let t_end = 3.0 in
  for site = 0 to n - 1 do
    let rec drive () =
      Dvp.System.exec sys (Dvp.Txn.write ~site [ (0, Dvp.Op.Incr 1) ]) ~on_done:ignore;
      if Dvp.Substrate.now sub +. 0.002 < t_end then
        ignore (Dvp.Substrate.schedule sub ~delay:0.002 drive)
    in
    ignore
      (Dvp.Substrate.schedule sub
         ~delay:(0.002 *. float_of_int site /. float_of_int n)
         drive)
  done;
  Dvp.System.run_until sys 0.5;
  let engine = Dvp.System.engine sys in
  let e0 = Dvp.Engine.events engine and b0 = Gc.allocated_bytes () in
  Dvp.System.run_until sys t_end;
  let e1 = Dvp.Engine.events engine and b1 = Gc.allocated_bytes () in
  let events = e1 - e0 in
  if events > 0 then
    Printf.printf "  %-32s %10.1f B/event (%d events)\n" "m12-alloc-per-event-64" ((b1 -. b0) /. float_of_int events) events

let run ?(quick = false) () =
  print_endline "\nMicro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then Time.second 0.05 else Time.second 0.25 in
  let cfg = Benchmark.cfg ~limit:1000 ~quota ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "(no results)"
  | Some tbl ->
    let rows =
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Printf.printf "  %-32s %10.1f ns/op\n" name ns
        | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
      rows;
    m12_alloc_per_event ()
