(* Bechamel micro-benchmarks (M1-M5): the per-operation costs underneath the
   experiment tables — forced log appends, the local-commit fast path, event
   queue operations, lock-table operations, and the Π algebra. *)

open Bechamel
open Toolkit

let m1_wal_append =
  let wal = Dvp_storage.Wal.create () in
  let record =
    Dvp.Log_event.Txn_commit
      { txn = (1, 0); actions = [ Dvp.Log_event.Set_fragment { item = 0; value = 42 } ] }
  in
  Test.make ~name:"m1-wal-append-force" (Staged.stage (fun () -> Dvp_storage.Wal.append wal record))

let m2_local_commit =
  (* The paper's fast path: a write-only transaction at one site — lock,
     force commit record, apply, unlock.  No messages. *)
  let sys = Dvp.System.create ~seed:1 ~n:2 () in
  Dvp.System.add_item sys ~item:0 ~total:1000 ();
  Test.make ~name:"m2-local-txn-commit"
    (Staged.stage (fun () ->
         Dvp.System.exec sys (Dvp.Txn.write ~site:0 [ (0, Dvp.Op.Incr 1) ]) ~on_done:(fun _ -> ())))

let m3_heap =
  let h = Dvp_util.Heap.create () in
  for i = 1 to 1024 do
    ignore (Dvp_util.Heap.add h ~priority:(float_of_int i) i)
  done;
  let next = ref 1025.0 in
  Test.make ~name:"m3-heap-push-pop"
    (Staged.stage (fun () ->
         ignore (Dvp_util.Heap.add h ~priority:!next 0);
         next := !next +. 1.0;
         ignore (Dvp_util.Heap.pop h)))

let m4_locks =
  let lt = Dvp.Lock_table.create () in
  let counter = ref 0 in
  Test.make ~name:"m4-lock-acquire-release"
    (Staged.stage (fun () ->
         incr counter;
         let txn = (!counter, 0) in
         ignore (Dvp.Lock_table.try_acquire_all lt ~items:[ 1; 2; 3 ] ~txn);
         ignore (Dvp.Lock_table.release_all lt ~txn)))

let m5_value_algebra =
  Test.make ~name:"m5-pi-split-merge"
    (Staged.stage (fun () ->
         let parts = Dvp.Value.split_even 100_000 ~parts:16 in
         ignore (Dvp.Value.pi parts)))

let m6_checkpoint =
  (* Snapshot + truncate of a site with a realistic item count. *)
  let sys = Dvp.System.create ~seed:2 ~n:4 () in
  for item = 0 to 31 do
    Dvp.System.add_item sys ~item ~total:1000 ()
  done;
  let site = Dvp.System.site sys 0 in
  Test.make ~name:"m6-site-checkpoint" (Staged.stage (fun () -> Dvp.Site.checkpoint site))

let tests = [ m1_wal_append; m2_local_commit; m3_heap; m4_locks; m5_value_algebra; m6_checkpoint ]

let run () =
  print_endline "\nMicro-benchmarks (Bechamel, monotonic clock)";
  print_endline "============================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let merged = Analyze.merge ols instances results in
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "(no results)"
  | Some tbl ->
    let rows =
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Printf.printf "  %-32s %10.1f ns/op\n" name ns
        | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
      rows
