(* The experiment suite.

   The paper (PODS 1990) is a theory paper with no tables or figures; this
   harness is the evaluation its Section 8 calls for, one experiment per
   quantifiable claim.  Every experiment prints a table; EXPERIMENTS.md
   records the expected shape and the measured outcome.  All runs are
   deterministic in the seed. *)

module Table = Dvp.Util.Table
module Rng = Dvp.Util.Rng
module Engine = Dvp.Engine
module Metrics = Dvp.Metrics
module Spec = Dvp.Spec
module Setup = Dvp.Setup
module Runner = Dvp.Runner
module Faultplan = Dvp.Faultplan
module Trad_site = Dvp.Baseline.Trad_site
module Json = Dvp.Util.Json

let quorum_config =
  { Trad_site.default_config with Trad_site.placement = Trad_site.Replicated }

let three_pc_config =
  { Trad_site.default_config with Trad_site.protocol = Trad_site.Three_phase }

(* Build a DvP system whose quotas are concentrated: each item's quota sits
   at [home item] with [keep] units left at every other site — the
   adversarial placement several experiments use to force redistribution. *)
let skewed_dvp_system ?(config = Dvp.Config.default) ?link ?trace ~seed ~n ~items ~home ~keep
    () =
  let sys = Dvp.System.create ~config ?link ?trace ~seed ~n () in
  List.iter
    (fun (item, total) ->
      let h = home item in
      let split = List.init n (fun s -> if s = h then total - (keep * (n - 1)) else keep) in
      Dvp.System.add_item sys ~item ~total ~split:(`Explicit split) ())
    items;
  sys

let section title =
  (* The id is the leading token ("E1", "E2", ...) — it names the
     BENCH_<id>.json file when --json collection is on. *)
  let id =
    match String.index_opt title ' ' with
    | Some i -> String.sub title 0 i
    | None -> title
  in
  Report.begin_section ~id ~title;
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ----------------------------------------------------------------- E1 *)

(* Claim (Sections 2, 8): DvP keeps processing during partitions; atomic-
   commit systems degrade with the fraction of time the network is split. *)
let e1 () =
  section "E1  Availability and throughput vs partition fraction";
  let duration = 20.0 in
  let spec =
    {
      Spec.default with
      Spec.label = "e1";
      Spec.n_sites = 6;
      Spec.items = List.init 6 (fun i -> (i, 4000));
      Spec.arrival_rate = 100.0;
      Spec.duration = duration;
      Spec.seed = 101;
    }
  in
  let groups = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ] ] in
  let seeds = [ 101; 202; 303; 404; 505 ] in
  let t =
    Table.create
      ~title:
        "availability (commit ratio, mean ± sd over 5 seeds) and throughput, 6 \
         sites, 100 txn/s"
      [
        ("partition %", Table.Right);
        ("system", Table.Left);
        ("avail", Table.Right);
        ("txn/s", Table.Right);
        ("p99 ms", Table.Right);
        ("max-blocked s", Table.Right);
      ]
  in
  List.iter
    (fun frac ->
      let faults =
        if frac = 0.0 then Faultplan.empty
        else
          Faultplan.partition_window ~start:(duration *. (1.0 -. frac) /. 2.0)
            ~len:(duration *. frac) groups
      in
      let run name mk_driver =
        (* Replicate over seeds; report mean availability with its spread. *)
        let avail = Dvp.Util.Dstats.create () in
        let tput = Dvp.Util.Dstats.create () in
        let p99 = Dvp.Util.Dstats.create () in
        let blocked = ref 0.0 in
        List.iter
          (fun seed ->
            let spec = Spec.with_seed spec seed in
            let o = Runner.run (mk_driver spec) spec ~faults () in
            Report.record o
              ~extra:
                [
                  ("partition_fraction", Json.Float frac);
                  ("system", Json.String name);
                  ("seed", Json.Int seed);
                ];
            Dvp.Util.Dstats.add avail o.Runner.availability;
            Dvp.Util.Dstats.add tput o.Runner.throughput;
            Dvp.Util.Dstats.add p99 (1000.0 *. Metrics.latency_p99 o.Runner.metrics);
            blocked := Float.max !blocked (Metrics.max_blocked o.Runner.metrics))
          seeds;
        Table.add_row t
          [
            Printf.sprintf "%.0f%%" (100.0 *. frac);
            name;
            Printf.sprintf "%.1f%% ± %.1f"
              (100.0 *. Dvp.Util.Dstats.mean avail)
              (100.0 *. Dvp.Util.Dstats.stddev avail);
            Table.ffloat ~dec:1 (Dvp.Util.Dstats.mean tput);
            Table.ffloat ~dec:1 (Dvp.Util.Dstats.mean p99);
            Table.ffloat ~dec:2 !blocked;
          ]
      in
      run "dvp" (fun spec -> Setup.dvp spec);
      run "2pc" (fun spec -> Setup.trad ~name:"2pc" spec);
      run "quorum" (fun spec -> Setup.trad ~config:quorum_config ~name:"quorum" spec);
      Table.add_sep t)
    [ 0.0; 0.2; 0.4; 0.6; 0.8 ];
  Table.print t

(* ----------------------------------------------------------------- E2 *)

(* Claim (Section 2.1): no atomic-commit protocol is non-blocking under
   partitions.  We cut the network mid-protocol and measure how long
   participants hold locks without a decision; 3PC unblocks but buys that
   with atomicity violations. *)
let e2 () =
  section "E2  Blocking: lock-hold under a mid-protocol partition";
  let t =
    Table.create
      ~title:
        "partition injected mid-protocol into every remote transaction; \
         sweep partition length"
      [
        ("partition s", Table.Right);
        ("system", Table.Left);
        ("max blocked s", Table.Right);
        ("max lock-hold s", Table.Right);
        ("atomicity violations", Table.Right);
      ]
  in
  let scenario ~plen ~mk_system ~name =
    (* 20 transactions, each with its own fresh system so the partition hits
       the same protocol point; aggregate the worst blocking. *)
    let max_blocked = ref 0.0 and max_hold = ref 0.0 and violations = ref 0 in
    for seed = 0 to 19 do
      let blocked, hold, viol = mk_system ~seed ~plen in
      if blocked > !max_blocked then max_blocked := blocked;
      if hold > !max_hold then max_hold := hold;
      violations := !violations + viol
    done;
    Table.add_row t
      [
        Table.ffloat ~dec:0 plen;
        name;
        Table.ffloat ~dec:2 !max_blocked;
        Table.ffloat ~dec:2 !max_hold;
        Table.fint !violations;
      ]
  in
  let trad_case config ~seed ~plen =
    let sys = Dvp.Baseline.Trad_system.create ~seed ~config ~n:4 () in
    Dvp.Baseline.Trad_system.add_item sys ~item:0 ~total:100;
    Dvp.Baseline.Trad_system.submit sys ~site:2
      ~ops:[ (0, Dvp.Op.Decr 10) ]
      ~on_done:(fun _ -> ());
    (* Vary the cut point across the protocol window (exec ~6 ms .. decision
       ~30 ms) so every phase gets hit, including the commit-decided /
       decision-undelivered window where 3PC termination goes wrong. *)
    let cut = 0.012 +. (0.004 *. float_of_int (seed mod 8)) in
    ignore
      (Engine.schedule (Dvp.Baseline.Trad_system.engine sys) ~delay:cut (fun () ->
           Dvp.Baseline.Trad_system.partition sys [ [ 0 ]; [ 1; 2; 3 ] ]));
    ignore
      (Engine.schedule (Dvp.Baseline.Trad_system.engine sys) ~delay:(cut +. plen)
         (fun () -> Dvp.Baseline.Trad_system.heal sys));
    Dvp.Baseline.Trad_system.run_until sys (plen +. 10.0);
    Dvp.Baseline.Trad_system.flush_blocked sys;
    let m = Dvp.Baseline.Trad_system.metrics sys in
    ( Metrics.max_blocked m,
      Metrics.max_lock_hold m,
      Dvp.Baseline.Trad_system.inconsistencies sys )
  in
  let dvp_case ~seed ~plen =
    let sys = Dvp.System.create ~seed ~n:4 () in
    Dvp.System.add_item sys ~item:0 ~total:100 ();
    (* Force the remote path: drain site 2's own quota first. *)
    Dvp.System.exec sys (Dvp.Txn.write ~site:2 [ (0, Dvp.Op.Decr 25) ]) ~on_done:(fun _ -> ());
    Dvp.System.exec sys (Dvp.Txn.write ~site:2 [ (0, Dvp.Op.Decr 10) ]) ~on_done:(fun _ -> ());
    ignore
      (Engine.schedule (Dvp.System.engine sys) ~delay:0.002 (fun () ->
           Dvp.System.partition sys [ [ 0 ]; [ 1; 2; 3 ] ]));
    ignore
      (Engine.schedule (Dvp.System.engine sys) ~delay:(0.002 +. plen) (fun () ->
           Dvp.System.heal sys));
    Dvp.System.run_until sys (plen +. 10.0);
    let m = Dvp.System.metrics sys in
    (Metrics.max_blocked m, Metrics.max_lock_hold m, 0)
  in
  List.iter
    (fun plen ->
      scenario ~plen ~name:"dvp" ~mk_system:dvp_case;
      scenario ~plen ~name:"2pc" ~mk_system:(trad_case Trad_site.default_config);
      scenario ~plen ~name:"3pc" ~mk_system:(trad_case three_pc_config);
      Table.add_sep t)
    [ 1.0; 2.0; 4.0; 8.0 ];
  Table.print t;
  print_endline
    "dvp max lock-hold stays at the transaction timeout (0.5 s) regardless of\n\
     partition length; 2pc blocked time tracks the partition; 3pc unblocks\n\
     at its termination timeout but decides wrongly under partitions."

(* ----------------------------------------------------------------- E3 *)

(* Claim (Sections 3, 8): during a partition every group keeps serving from
   its local quotas — including minorities, which quorum systems freeze. *)
let e3 () =
  section "E3  Per-group service during a 3-way partition";
  let spec =
    {
      Spec.default with
      Spec.label = "e3";
      Spec.n_sites = 6;
      Spec.items = List.init 6 (fun i -> (i, 6000));
      Spec.arrival_rate = 120.0;
      Spec.duration = 15.0;
      Spec.seed = 103;
    }
  in
  (* Partitioned for the whole run: per-site ratios are per-group service. *)
  let groups = [ [ 0 ]; [ 1; 2 ]; [ 3; 4; 5 ] ] in
  let faults = [ Faultplan.at 0.0 (Faultplan.Partition groups) ] in
  let t =
    Table.create
      ~title:"commit ratio by partition group (partitioned for the whole run)"
      [
        ("system", Table.Left);
        ("group {0} (1 site)", Table.Right);
        ("group {1,2}", Table.Right);
        ("group {3,4,5}", Table.Right);
        ("overall", Table.Right);
      ]
  in
  let group_ratio (o : Runner.outcome) sites =
    let c = List.fold_left (fun acc s -> acc + o.Runner.per_site_committed.(s)) 0 sites in
    let s = List.fold_left (fun acc s -> acc + o.Runner.per_site_submitted.(s)) 0 sites in
    if s = 0 then nan else float_of_int c /. float_of_int s
  in
  let run name driver =
    let o = Runner.run driver spec ~faults () in
    Report.record o ~extra:[ ("system", Json.String name) ];
    Table.add_row t
      [
        name;
        Table.fpct (group_ratio o [ 0 ]);
        Table.fpct (group_ratio o [ 1; 2 ]);
        Table.fpct (group_ratio o [ 3; 4; 5 ]);
        Table.fpct o.Runner.availability;
      ]
  in
  run "dvp" (Setup.dvp spec);
  run "2pc" (Setup.trad ~name:"2pc" spec);
  run "quorum" (Setup.trad ~config:quorum_config ~name:"quorum" spec);
  Table.print t

(* ----------------------------------------------------------------- E4 *)

(* Claim (Section 7): DvP recovery is independent — zero messages, and the
   recovered site serves immediately.  Traditional recovery must resolve
   in-doubt transactions with the coordinator. *)
let e4 () =
  section "E4  Independent recovery";
  let t =
    Table.create
      ~title:"crash site 0 mid-run, recover 3 s later (20 runs, mean)"
      [
        ("system", Table.Left);
        ("recovery msgs", Table.Right);
        ("redo records", Table.Right);
        ("ms to first local commit", Table.Right);
      ]
  in
  let bench_dvp () =
    let msgs = ref 0 and redo = ref 0 and ttfc = ref 0.0 in
    for seed = 0 to 19 do
      let sys = Dvp.System.create ~seed ~n:4 () in
      Dvp.System.add_item sys ~item:0 ~total:400 ();
      (* Background traffic so there is log state to rebuild. *)
      let rng = Rng.create (seed + 500) in
      for _ = 1 to 30 do
        let at = Rng.float rng 3.0 in
        ignore
          (Engine.schedule_at (Dvp.System.engine sys) ~at (fun () ->
               if Dvp.System.site_up sys (Rng.int rng 4) then
                 Dvp.System.exec sys
                   (Dvp.Txn.write ~site:(Rng.int rng 4) [ (0, Dvp.Op.Decr 1) ])
                   ~on_done:(fun _ -> ())))
      done;
      ignore
        (Engine.schedule_at (Dvp.System.engine sys) ~at:3.5 (fun () ->
             Dvp.System.crash_site sys 0));
      ignore
        (Engine.schedule_at (Dvp.System.engine sys) ~at:6.5 (fun () ->
             Dvp.System.recover_site sys 0;
             let t0 = Dvp.System.now sys in
             Dvp.System.exec sys
               (Dvp.Txn.write ~site:0 [ (0, Dvp.Op.Decr 1) ])
               ~on_done:(fun r ->
                 match r with
                 | Dvp.Txn.Committed _ -> ttfc := !ttfc +. (Dvp.System.now sys -. t0)
                 | Dvp.Txn.Aborted _ -> ())));
      Dvp.System.run_until sys 10.0;
      let m = Dvp.System.metrics sys in
      msgs := !msgs + Metrics.recovery_messages m;
      redo := !redo + Metrics.recovery_redos m
    done;
    (float_of_int !msgs /. 20.0, float_of_int !redo /. 20.0, 1000.0 *. !ttfc /. 20.0)
  in
  let bench_trad () =
    let msgs = ref 0 and redo = ref 0 and ttfc = ref 0.0 in
    for seed = 0 to 19 do
      let sys = Dvp.Baseline.Trad_system.create ~seed ~n:4 () in
      Dvp.Baseline.Trad_system.add_item sys ~item:0 ~total:400;
      (* A remote transaction is mid-protocol when its home site crashes, so
         the site recovers with an in-doubt transaction in its log. *)
      Dvp.Baseline.Trad_system.submit sys ~site:2
        ~ops:[ (0, Dvp.Op.Decr 1) ]
        ~on_done:(fun _ -> ());
      ignore
        (Engine.schedule (Dvp.Baseline.Trad_system.engine sys) ~delay:0.022 (fun () ->
             Dvp.Baseline.Trad_system.crash_site sys 0));
      ignore
        (Engine.schedule_at (Dvp.Baseline.Trad_system.engine sys) ~at:3.0 (fun () ->
             Dvp.Baseline.Trad_system.recover_site sys 0;
             let t0 = Dvp.Baseline.Trad_system.now sys in
             Dvp.Baseline.Trad_system.submit sys ~site:0
               ~ops:[ (0, Dvp.Op.Decr 1) ]
               ~on_done:(fun r ->
                 match r with
                 | Dvp.Site.Committed _ ->
                   ttfc := !ttfc +. (Dvp.Baseline.Trad_system.now sys -. t0)
                 | Dvp.Site.Aborted _ -> ())));
      Dvp.Baseline.Trad_system.run_until sys 8.0;
      let m = Dvp.Baseline.Trad_system.metrics sys in
      msgs := !msgs + Metrics.recovery_messages m;
      redo := !redo + Metrics.recovery_redos m
    done;
    (float_of_int !msgs /. 20.0, float_of_int !redo /. 20.0, 1000.0 *. !ttfc /. 20.0)
  in
  let d_m, d_r, d_t = bench_dvp () in
  Table.add_row t
    [ "dvp"; Table.ffloat ~dec:2 d_m; Table.ffloat ~dec:1 d_r; Table.ffloat ~dec:1 d_t ];
  let t_m, t_r, t_t = bench_trad () in
  Table.add_row t
    [ "2pc"; Table.ffloat ~dec:2 t_m; Table.ffloat ~dec:1 t_r; Table.ffloat ~dec:1 t_t ];
  Table.print t

(* ----------------------------------------------------------------- E5 *)

(* Claim (Section 8): DvP relieves aggregate-field hot spots; central
   schemes saturate (2PL) or bottleneck on the server round-trip (escrow). *)
let e5 () =
  section "E5  Hot-spot aggregate: throughput vs offered load";
  let n_sites = 8 and duration = 8.0 and stock = 10_000_000 in
  let t =
    Table.create
      ~title:"one hot aggregate, 8 sites; committed orders/s (p99 ms)"
      [
        ("offered/s", Table.Right);
        ("central 2PL", Table.Right);
        ("central escrow", Table.Right);
        ("dvp", Table.Right);
      ]
  in
  let run_central mode rate =
    let engine = Engine.create () in
    let rng = Rng.create 3 in
    let net = Dvp.Net.Network.create (Dvp.Substrate_des.of_engine engine) ~rng:(Rng.split rng) ~n:n_sites () in
    let metrics = Metrics.create () in
    let server =
      Dvp.Baseline.Escrow.server engine ~mode
        ~send:(fun ~dst msg -> Dvp.Net.Network.send net ~src:0 ~dst msg)
        ()
    in
    Dvp.Baseline.Escrow.install server ~item:0 stock;
    Dvp.Net.Network.set_handler net 0 (fun ~src msg ->
        Dvp.Baseline.Escrow.handle_server server ~src msg);
    let clients =
      Array.init n_sites (fun i ->
          if i = 0 then None
          else
            Some
              (Dvp.Baseline.Escrow.client engine ~self:i
                 ~send:(fun msg -> Dvp.Net.Network.send net ~src:i ~dst:0 msg)
                 ~metrics ()))
    in
    Array.iteri
      (fun i c ->
        match c with
        | Some client ->
          Dvp.Net.Network.set_handler net i (fun ~src:_ msg ->
              Dvp.Baseline.Escrow.handle_client client msg)
        | None -> ())
      clients;
    let rec arrivals () =
      if Engine.now engine < duration then begin
        (match clients.(1 + Rng.int rng (n_sites - 1)) with
        | Some client ->
          Dvp.Baseline.Escrow.request client ~item:0 ~op:(Dvp.Op.Decr 1)
            ~on_done:(fun _ -> ())
        | None -> ());
        ignore (Engine.schedule engine ~delay:(Rng.exponential rng (1.0 /. rate)) arrivals)
      end
    in
    ignore (Engine.schedule engine ~delay:0.001 arrivals);
    Engine.run_until engine (duration +. 3.0);
    ( float_of_int (Metrics.committed metrics) /. duration,
      1000.0 *. Metrics.latency_p99 metrics )
  in
  let run_dvp rate =
    let sys = Dvp.System.create ~seed:3 ~n:n_sites () in
    Dvp.System.add_item sys ~item:0 ~total:stock ();
    let engine = Dvp.System.engine sys in
    let rng = Rng.create 3 in
    let committed = ref 0 in
    let lat = Dvp.Util.Dstats.Sample.create () in
    let rec arrivals () =
      if Engine.now engine < duration then begin
        let site = Rng.int rng n_sites in
        let t0 = Engine.now engine in
        Dvp.System.exec sys
          (Dvp.Txn.write ~site [ (0, Dvp.Op.Decr 1) ])
          ~on_done:(fun r ->
            match r with
            | Dvp.Txn.Committed _ ->
              incr committed;
              Dvp.Util.Dstats.Sample.add lat (Engine.now engine -. t0)
            | Dvp.Txn.Aborted _ -> ());
        ignore (Engine.schedule engine ~delay:(Rng.exponential rng (1.0 /. rate)) arrivals)
      end
    in
    ignore (Engine.schedule engine ~delay:0.001 arrivals);
    Engine.run_until engine (duration +. 3.0);
    ( float_of_int !committed /. duration,
      1000.0 *. Dvp.Util.Dstats.Sample.percentile lat 99.0 )
  in
  let cell (tput, p99) = Printf.sprintf "%.0f (%.1f)" tput p99 in
  List.iter
    (fun rate ->
      let lock = run_central Dvp.Baseline.Escrow.Exclusive_locking rate in
      let escrow = run_central Dvp.Baseline.Escrow.Escrow_locking rate in
      let dvp = run_dvp rate in
      Table.add_row t
        [ Table.ffloat ~dec:0 rate; cell lock; cell escrow; cell dvp ])
    [ 50.0; 100.0; 200.0; 400.0; 800.0; 1600.0 ];
  Table.print t

(* ----------------------------------------------------------------- E6 *)

(* Section 8/9: "performance studies to find the best ways to distribute
   the data... and to reduce the message traffic" — the policy ablation.
   Quotas are deliberately concentrated at site 0 so most sites must
   request value. *)
let e6 () =
  section "E6  Redistribution policy ablation (skewed quota placement)";
  let n = 6 in
  let spec =
    {
      Spec.default with
      Spec.label = "e6";
      Spec.n_sites = n;
      Spec.items = [ (0, 6000) ];
      Spec.arrival_rate = 40.0;
      Spec.duration = 15.0;
      Spec.incr_fraction = 0.1;
      Spec.op_min = 5;
      Spec.op_max = 15;
      Spec.seed = 106;
    }
  in
  let t =
    Table.create
      ~title:
        "98% of the quota at site 0; uniform demand (5-15 units) at all 6 sites"
      [
        ("request policy", Table.Left);
        ("grant policy", Table.Left);
        ("avail", Table.Right);
        ("msgs/commit", Table.Right);
        ("vm created", Table.Right);
        ("p99 ms", Table.Right);
      ]
  in
  let policies =
    [
      ("ask-one", Dvp.Config.Ask_one_random);
      ("ask-2", Dvp.Config.Ask_k 2);
      ("ask-all-split", Dvp.Config.Ask_all_split);
      ("ask-all-full", Dvp.Config.Ask_all_full);
    ]
  in
  let grants =
    [
      ("grant-requested", Dvp.Config.Grant_requested);
      ("grant-double", Dvp.Config.Grant_double);
      ("grant-half-keep", Dvp.Config.Grant_half_keep);
    ]
  in
  List.iter
    (fun (rp_name, rp) ->
      List.iter
        (fun (gp_name, gp) ->
          let config =
            { Dvp.Config.default with Dvp.Config.request_policy = rp; grant_policy = gp }
          in
          (* Nearly all of the quota at site 0: sites 1-5 must gather value
             for almost every operation. *)
          let sys =
            skewed_dvp_system ~config ~seed:spec.Spec.seed ~n ~items:[ (0, 6000) ]
              ~home:(fun _ -> 0) ~keep:20 ()
          in
          let driver = Dvp.Driver.of_dvp sys in
          let o = Runner.run driver spec () in
          Report.record o
            ~extra:
              [
                ("request_policy", Json.String rp_name);
                ("grant_policy", Json.String gp_name);
              ];
          Table.add_row t
            [
              rp_name;
              gp_name;
              Table.fpct o.Runner.availability;
              Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
              Table.fint (Metrics.vm_created_count o.Runner.metrics);
              Table.ffloat ~dec:1 (1000.0 *. Metrics.latency_p99 o.Runner.metrics);
            ])
        grants;
      Table.add_sep t)
    policies;
  Table.print t

(* ----------------------------------------------------------------- E7 *)

(* Claim (Section 8): "there is a high overhead in reading the entire value
   of a particular data item" — quantify it, and its effect on updates. *)
let e7 () =
  section "E7  The cost of full reads (drains)";
  let spec_base =
    {
      Spec.default with
      Spec.label = "e7";
      Spec.n_sites = 6;
      Spec.items = [ (0, 6000) ];
      Spec.arrival_rate = 60.0;
      Spec.duration = 15.0;
      Spec.seed = 107;
    }
  in
  let t =
    Table.create
      ~title:"update workload with an increasing fraction of full reads"
      [
        ("read %", Table.Right);
        ("system", Table.Left);
        ("avail", Table.Right);
        ("msgs/commit", Table.Right);
        ("p99 ms", Table.Right);
      ]
  in
  List.iter
    (fun rf ->
      let spec = { spec_base with Spec.read_fraction = rf } in
      let run name driver =
        let o = Runner.run driver spec () in
        Report.record o
          ~extra:[ ("read_fraction", Json.Float rf); ("system", Json.String name) ];
        Table.add_row t
          [
            Printf.sprintf "%.0f%%" (100.0 *. rf);
            name;
            Table.fpct o.Runner.availability;
            Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
            Table.ffloat ~dec:1 (1000.0 *. Metrics.latency_p99 o.Runner.metrics);
          ]
      in
      run "dvp" (Setup.dvp spec);
      run "2pc" (Setup.trad ~name:"2pc" spec);
      Table.add_sep t)
    [ 0.0; 0.01; 0.05; 0.1; 0.2; 0.5 ];
  Table.print t;
  print_endline
    "Reads are where DvP pays: each drain moves the whole multiset to the\n\
     reader and aborts concurrent work, while the single-copy read is one\n\
     lock at the home site."

(* ----------------------------------------------------------------- E8 *)

(* Section 6: Conc1 (timestamp gating, abort on conflict) vs Conc2 (strict
   2PL with ordered broadcast, wait on conflict) under rising contention. *)
let e8 () =
  section "E8  Conc1 vs Conc2 under contention";
  let t =
    Table.create
      ~title:"fixed 100 txn/s over a shrinking item set (more contention ->)"
      [
        ("items", Table.Right);
        ("cc", Table.Left);
        ("avail", Table.Right);
        ("lock-busy aborts", Table.Right);
        ("timeout aborts", Table.Right);
        ("p99 ms", Table.Right);
        ("msgs/commit", Table.Right);
      ]
  in
  List.iter
    (fun n_items ->
      let n = 4 in
      let spec =
        {
          Spec.default with
          Spec.label = "e8";
          Spec.n_sites = n;
          Spec.items = List.init n_items (fun i -> (i, 8000));
          Spec.arrival_rate = 100.0;
          Spec.duration = 15.0;
          Spec.incr_fraction = 0.2;
          Spec.op_min = 5;
          Spec.op_max = 15;
          Spec.seed = 108;
        }
      in
      let run name config =
        (* Quotas concentrated at one site per item, so most transactions
           must gather value and hold their locks while waiting — that is
           where the two concurrency controls differ. *)
        let sys =
          skewed_dvp_system ~config ~seed:spec.Spec.seed ~n ~items:spec.Spec.items
            ~home:(fun item -> item mod n) ~keep:20 ()
        in
        let o = Runner.run (Dvp.Driver.of_dvp ~name sys) spec () in
        Report.record o ~extra:[ ("cc", Json.String name) ];
        Table.add_row t
          [
            Table.fint n_items;
            name;
            Table.fpct o.Runner.availability;
            Table.fint (Metrics.aborted_by o.Runner.metrics Metrics.Lock_busy);
            Table.fint (Metrics.aborted_by o.Runner.metrics Metrics.Timeout);
            Table.ffloat ~dec:1 (1000.0 *. Metrics.latency_p99 o.Runner.metrics);
            Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
          ]
      in
      run "conc1" Dvp.Config.default;
      run "conc2" { Dvp.Config.default with Dvp.Config.cc = Dvp.Config.Conc2 };
      Table.add_sep t)
    [ 16; 8; 4; 2; 1 ];
  Table.print t

(* ----------------------------------------------------------------- E9 *)

(* Claim (Section 4.2): a Vm is never lost — conservation holds at any
   message loss/duplication rate, paid for in retransmissions. *)
let e9 () =
  section "E9  Virtual messages under loss and duplication";
  let t =
    Table.create
      ~title:"banking-style load, 6 sites, 15 s; crash+recover site 2 mid-run"
      [
        ("loss %", Table.Right);
        ("acks", Table.Left);
        ("avail", Table.Right);
        ("vm created", Table.Right);
        ("retrans/vm", Table.Right);
        ("dups discarded", Table.Right);
        ("msgs/commit", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  let run loss ~ack_delay ~label =
    let link = { Dvp.Net.Linkstate.default with loss_prob = loss; dup_prob = 0.1 } in
    let spec =
      {
        Spec.default with
        Spec.label = "e9";
        Spec.n_sites = 6;
        Spec.items = [ (0, 6000); (1, 6000) ];
        Spec.arrival_rate = 40.0;
        Spec.duration = 15.0;
        Spec.incr_fraction = 0.1;
        Spec.op_min = 5;
        Spec.op_max = 15;
        Spec.seed = 109;
      }
    in
    (* Quotas concentrated so most operations pull value across the lossy
       links — the Vm machinery is what is under test. *)
    let config =
      {
        Dvp.Config.default with
        Dvp.Config.request_policy = Dvp.Config.Ask_all_full;
        transport = Dvp.Config.Transport.v ~ack_delay ();
      }
    in
    let sys =
      skewed_dvp_system ~config ~link ~seed:spec.Spec.seed ~n:6 ~items:spec.Spec.items
        ~home:(fun item -> item) ~keep:20 ()
    in
    let driver = Dvp.Driver.of_dvp sys in
    let faults = Faultplan.crash_cycle ~site:2 ~first:5.0 ~downtime:3.0 in
    let o = Runner.run driver spec ~faults ~drain:20.0 () in
    Report.record o
      ~extra:[ ("loss_prob", Json.Float loss); ("ack", Json.String label) ];
    let m = o.Runner.metrics in
    let vm = Metrics.vm_created_count m in
    Table.add_row t
      [
        Printf.sprintf "%.0f%%" (100.0 *. loss);
        label;
        Table.fpct o.Runner.availability;
        Table.fint vm;
        Table.ffloat ~dec:2
          (if vm = 0 then nan
           else float_of_int (Metrics.vm_retransmissions m) /. float_of_int vm);
        Table.fint (Metrics.vm_duplicates m);
        Table.ffloat ~dec:1 (Metrics.messages_per_commit m);
        (if Dvp.System.conserved_all sys then "yes" else "VIOLATED");
      ]
  in
  List.iter
    (fun loss ->
      run loss ~ack_delay:0.0 ~label:"immediate";
      run loss ~ack_delay:0.08 ~label:"delayed";
      Table.add_sep t)
    [ 0.0; 0.1; 0.2; 0.3; 0.4 ];
  Table.print t

(* ---------------------------------------------------------------- E10 *)

(* Section 8/9: message and log overhead as the system scales out. *)
let e10 () =
  section "E10  Overhead scaling with the number of sites";
  let t =
    Table.create
      ~title:"25 txn/s per site, 12 s; messages and forced log writes per commit"
      [
        ("sites", Table.Right);
        ("system", Table.Left);
        ("avail", Table.Right);
        ("txn/s", Table.Right);
        ("msgs/commit", Table.Right);
        ("forces/commit", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let spec =
        {
          Spec.default with
          Spec.label = "e10";
          Spec.n_sites = n;
          Spec.items = List.init (2 * n) (fun i -> (i, 4000));
          Spec.arrival_rate = 25.0 *. float_of_int n;
          Spec.duration = 12.0;
          Spec.seed = 110;
        }
      in
      let run name driver =
        let o = Runner.run driver spec () in
        Report.record o ~extra:[ ("n_sites", Json.Int n); ("system", Json.String name) ];
        Table.add_row t
          [
            Table.fint n;
            name;
            Table.fpct o.Runner.availability;
            Table.ffloat ~dec:1 o.Runner.throughput;
            Table.ffloat ~dec:2 (Metrics.messages_per_commit o.Runner.metrics);
            Table.ffloat ~dec:2 (Metrics.forces_per_commit o.Runner.metrics);
          ]
      in
      run "dvp" (Setup.dvp spec);
      run "2pc" (Setup.trad ~name:"2pc" spec);
      Table.add_sep t)
    [ 2; 4; 8; 16; 32 ];
  Table.print t

(* ---------------------------------------------------------------- E11 *)

(* Section 7: "by using checkpointing mechanisms, the number of redo actions
   required can be reduced in the usual manner" — measure the recovery
   (replay) cost with and without periodic checkpoints. *)
let e11 () =
  section "E11  Checkpointing ablation: log length and recovery cost";
  let t =
    Table.create
      ~title:"4 sites, 100 txn/s; crash+recover site 0 at the end of the run"
      [
        ("run length s", Table.Right);
        ("checkpoints", Table.Left);
        ("stable log records", Table.Right);
        ("records at site 0", Table.Right);
        ("redo txns", Table.Right);
      ]
  in
  List.iter
    (fun duration ->
      let run label checkpoint_every =
        let sys = Dvp.System.create ~seed:111 ~n:4 () in
        Dvp.System.add_item sys ~item:0 ~total:100_000 ();
        (match checkpoint_every with
        | Some every -> Dvp.System.start_periodic_checkpoints sys ~every
        | None -> ());
        let rng = Rng.create 111 in
        let rec arrivals () =
          if Engine.now (Dvp.System.engine sys) < duration then begin
            let site = Rng.int rng 4 in
            Dvp.System.exec sys
              (Dvp.Txn.write ~site [ (0, Dvp.Op.Decr 1) ])
              ~on_done:(fun _ -> ());
            ignore
              (Engine.schedule (Dvp.System.engine sys)
                 ~delay:(Rng.exponential rng 0.01) arrivals)
          end
        in
        ignore (Engine.schedule (Dvp.System.engine sys) ~delay:0.001 arrivals);
        Dvp.System.run_until sys duration;
        let site0_records =
          Dvp.Storage.Wal.stable_length (Dvp.Site.wal (Dvp.System.site sys 0))
        in
        Dvp.System.crash_site sys 0;
        Dvp.System.run_until sys (duration +. 1.0);
        Dvp.System.recover_site sys 0;
        let m = Dvp.System.metrics sys in
        Table.add_row t
          [
            Table.ffloat ~dec:0 duration;
            label;
            Table.fint (Dvp.System.stable_log_length sys);
            Table.fint site0_records;
            Table.fint (Metrics.recovery_redos m);
          ]
      in
      run "none" None;
      run "every 1 s" (Some 1.0);
      Table.add_sep t)
    [ 5.0; 10.0; 20.0 ];
  Table.print t

(* ---------------------------------------------------------------- E12 *)

(* Section 9: "performance studies to find the best ways to distribute the
   data" — the demand-following proactive redistribution daemon vs the
   purely reactive base scheme, under skewed placement. *)
let e12 () =
  section "E12  Proactive vs reactive redistribution (skewed placement)";
  let n = 6 in
  let spec =
    {
      Spec.default with
      Spec.label = "e12";
      Spec.n_sites = n;
      Spec.items = [ (0, 60_000) ];
      Spec.arrival_rate = 100.0;
      Spec.duration = 15.0;
      Spec.incr_fraction = 0.1;
      Spec.op_min = 5;
      Spec.op_max = 15;
      Spec.seed = 112;
    }
  in
  let t =
    Table.create
      ~title:"whole quota at site 0; uniform demand (5-15 units) at all 6 sites"
      [
        ("scheme", Table.Left);
        ("avail", Table.Right);
        ("p50 ms", Table.Right);
        ("p99 ms", Table.Right);
        ("msgs/commit", Table.Right);
        ("vm created", Table.Right);
      ]
  in
  let run label proactive =
    let config =
      {
        Dvp.Config.default with
        Dvp.Config.request_policy = Dvp.Config.Ask_all_full;
        proactive;
      }
    in
    let sys =
      skewed_dvp_system ~config ~seed:spec.Spec.seed ~n ~items:[ (0, 60_000) ]
        ~home:(fun _ -> 0) ~keep:20 ()
    in
    let o = Runner.run (Dvp.Driver.of_dvp ~name:label sys) spec () in
    Report.record o ~extra:[ ("policy", Json.String label) ];
    Table.add_row t
      [
        label;
        Table.fpct o.Runner.availability;
        Table.ffloat ~dec:1 (1000.0 *. Metrics.latency_p50 o.Runner.metrics);
        Table.ffloat ~dec:1 (1000.0 *. Metrics.latency_p99 o.Runner.metrics);
        Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
        Table.fint (Metrics.vm_created_count o.Runner.metrics);
      ]
  in
  run "reactive (paper base)" None;
  List.iter
    (fun (label, every, share) ->
      run label
        (Some
           {
             Dvp.Config.default_proactive with
             Dvp.Config.every;
             share_fraction = share;
             min_surplus = 200;
           }))
    [
      ("proactive 1s/25%", 1.0, 0.25);
      ("proactive 0.5s/50%", 0.5, 0.5);
      ("proactive 0.2s/50%", 0.2, 0.5);
    ];
  Table.print t;
  print_endline
    "The daemon pre-positions value at the sites that have recently asked\n\
     for it, converting remote-latency commits into local ones."

(* ---------------------------------------------------------------- E13 *)

(* Section 8: "There is a problem of livelock occurring in the scheme as
   described, but using some additional mechanisms, this can be avoided."
   The mechanism here is client-side retry with linear backoff
   (System.submit_retrying); measure how retries convert conflict/timeout
   aborts into eventual success under heavy contention. *)
let e13 () =
  section "E13  Client retries against livelock (heavy contention)";
  let n = 4 in
  let t =
    Table.create
      ~title:"4 sites, one contended item, quota at site 0; 300 jobs of Decr 5-15"
      [
        ("retries", Table.Right);
        ("jobs done", Table.Right);
        ("effective success", Table.Right);
        ("mean attempts/job", Table.Right);
      ]
  in
  List.iter
    (fun retries ->
      let config =
        { Dvp.Config.default with Dvp.Config.request_policy = Dvp.Config.Ask_all_full }
      in
      let sys =
        skewed_dvp_system ~config ~seed:113 ~n ~items:[ (0, 100_000) ] ~home:(fun _ -> 0)
          ~keep:20 ()
      in
      let rng = Rng.create 113 in
      let done_ok = ref 0 and jobs = 300 in
      (* Dense arrivals: while one job waits ~12 ms for its value, the next
         job at the same site finds the item locked (Conc1 aborts). *)
      for _ = 1 to jobs do
        let at = Rng.float rng 3.0 in
        ignore
          (Engine.schedule_at (Dvp.System.engine sys) ~at (fun () ->
               let site = Rng.int rng n in
               let m = 5 + Rng.int rng 11 in
               Dvp.System.exec sys
                 (Dvp.Txn.with_retry ~retries ~backoff:0.2
                    (Dvp.Txn.write ~site [ (0, Dvp.Op.Decr m) ]))
                 ~on_done:(fun r ->
                   match r with Dvp.Txn.Committed _ -> incr done_ok | _ -> ())))
      done;
      Dvp.System.run_until sys 30.0;
      let m = Dvp.System.metrics sys in
      let attempts = Metrics.submitted m in
      Table.add_row t
        [
          Table.fint retries;
          Table.fint !done_ok;
          Table.fpct (float_of_int !done_ok /. float_of_int jobs);
          Table.ffloat ~dec:2 (float_of_int attempts /. float_of_int jobs);
        ])
    [ 0; 1; 2; 4; 8 ];
  Table.print t

(* ---------------------------------------------------------------- E14 *)

(* Section 8: "it may be preferable to design systems that can respond to
   different situations by dynamically interchanging between a DvP scheme
   and some traditional scheme" — the hybrid mode manager vs pure DvP across
   the read-fraction sweep of E7. *)
let e14 () =
  section "E14  Hybrid DvP/primary-copy vs pure DvP across read mixes";
  let t =
    Table.create
      ~title:"same workload as E7; hybrid centralizes read-hot items"
      [
        ("read %", Table.Right);
        ("system", Table.Left);
        ("avail", Table.Right);
        ("msgs/commit", Table.Right);
        ("mode flips", Table.Right);
      ]
  in
  List.iter
    (fun rf ->
      let spec =
        {
          Spec.default with
          Spec.label = "e14";
          Spec.n_sites = 6;
          Spec.items = [ (0, 6000) ];
          Spec.arrival_rate = 60.0;
          Spec.duration = 15.0;
          Spec.read_fraction = rf;
          Spec.seed = 114;
        }
      in
      let config =
        { Dvp.Config.default with Dvp.Config.request_policy = Dvp.Config.Ask_all_full }
      in
      let run_pure () =
        let o = Runner.run (Setup.dvp ~config spec) spec () in
        Report.record o ~extra:[ ("read_fraction", Json.Float rf) ];
        Table.add_row t
          [
            Printf.sprintf "%.0f%%" (100.0 *. rf);
            "dvp";
            Table.fpct o.Runner.availability;
            Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
            "-";
          ]
      in
      let run_hybrid () =
        let sys = Setup.dvp_system ~config spec in
        let hybrid = Dvp.Hybrid.create sys () in
        let o = Runner.run (Dvp.Driver.of_hybrid ~name:"hybrid" sys hybrid) spec () in
        Report.record o ~extra:[ ("read_fraction", Json.Float rf) ];
        Table.add_row t
          [
            Printf.sprintf "%.0f%%" (100.0 *. rf);
            "hybrid";
            Table.fpct o.Runner.availability;
            Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
            Table.fint (Dvp.Hybrid.centralizations hybrid + Dvp.Hybrid.repartitions hybrid);
          ]
      in
      run_pure ();
      run_hybrid ();
      Table.add_sep t)
    [ 0.0; 0.05; 0.2; 0.5 ];
  Table.print t;
  print_endline
    "At 0% reads the hybrid never leaves DvP mode; as reads grow it parks\n\
     the item at its home site, serving reads there while updates pay one\n\
     round trip — the crossover Section 8 anticipates."

(* ---------------------------------------------------------------- E15 *)

(* Saturation honesty check: the open-loop sweeps above fix an arrival
   rate; here closed-loop clients push each system as hard as it will go
   and we read off the ceiling and where it comes from. *)
let e15 () =
  section "E15  Closed-loop saturation: throughput vs concurrent clients";
  let t =
    Table.create
      ~title:"6 sites, 12 items, 5 ms think time; committed txn/s (p99 ms)"
      [
        ("clients", Table.Right);
        ("dvp", Table.Right);
        ("2pc", Table.Right);
        ("quorum", Table.Right);
      ]
  in
  let spec =
    {
      Spec.default with
      Spec.label = "e15";
      Spec.n_sites = 6;
      Spec.items = List.init 12 (fun i -> (i, 50_000));
      Spec.duration = 4.0;
      Spec.seed = 115;
    }
  in
  let cell clients driver =
    let o = Runner.run_closed driver spec ~clients ~think:0.005 () in
    Report.record o ~extra:[ ("clients", Json.Int clients) ];
    Printf.sprintf "%.0f (%.1f)" o.Runner.throughput
      (1000.0 *. Metrics.latency_p99 o.Runner.metrics)
  in
  List.iter
    (fun clients ->
      let dvp = cell clients (Setup.dvp spec) in
      let tpc = cell clients (Setup.trad ~name:"2pc" spec) in
      let q = cell clients (Setup.trad ~config:quorum_config ~name:"quorum" spec) in
      Table.add_row t [ Table.fint clients; dvp; tpc; q ])
    [ 1; 4; 16; 64 ];
  Table.print t;
  print_endline
    "dvp commits locally, so closed-loop clients are bounded only by their\n\
     think time; the commit protocols are bounded by round trips and\n\
     home-site lock serialisation."

(* ---------------------------------------------------------------- E16 *)

(* Section 5's "the requests could be re-tried a few more times" variation:
   requests carry no reliability of their own, so on lossy links the
   transaction often times out because its *request* died, not its Vm.
   Mid-transaction request retries recover exactly those losses. *)
let e16 () =
  section "E16  Mid-transaction request retries on lossy links";
  (* The crisp case: two sites, all value at site 0, demand at site 1 — every
     transaction hinges on exactly one unlogged, unacknowledged request
     message.  Without retries, availability tracks the request's survival
     probability; retries multiply the chances within the same timeout.
     (Vm loss is already covered by retransmission; this isolates request
     loss, the one unprotected message class.) *)
  let t =
    Table.create
      ~title:
        "2 sites, value at site 0, demand at site 1 (one request per txn); \
         loss x retries"
      [
        ("loss %", Table.Right);
        ("retries", Table.Right);
        ("avail", Table.Right);
        ("msgs/commit", Table.Right);
      ]
  in
  List.iter
    (fun loss ->
      List.iter
        (fun retries ->
          let link = Dvp.Net.Linkstate.lossy loss in
          let config =
            { Dvp.Config.default with
              Dvp.Config.request_policy = Dvp.Config.Ask_one_random;
              request_retries = retries
            }
          in
          let sys = Dvp.System.create ~config ~link ~seed:116 ~n:2 () in
          Dvp.System.add_item sys ~item:0 ~total:1_000_000
            ~split:(`Explicit [ 1_000_000; 0 ]) ();
          let rng = Rng.create 116 in
          let committed = ref 0 and submitted = ref 0 in
          let rec arrivals () =
            if Engine.now (Dvp.System.engine sys) < 15.0 then begin
              incr submitted;
              Dvp.System.exec sys
                (Dvp.Txn.write ~site:1 [ (0, Dvp.Op.Decr (5 + Rng.int rng 11)) ])
                ~on_done:(fun r ->
                  match r with Dvp.Txn.Committed _ -> incr committed | _ -> ());
              ignore
                (Engine.schedule (Dvp.System.engine sys)
                   ~delay:(0.6 +. Rng.float rng 0.2) arrivals)
            end
          in
          ignore (Engine.schedule (Dvp.System.engine sys) ~delay:0.01 arrivals);
          Dvp.System.run_until sys 25.0;
          let m = Dvp.System.metrics sys in
          Table.add_row t
            [
              Printf.sprintf "%.0f%%" (100.0 *. loss);
              Table.fint retries;
              Table.fpct (float_of_int !committed /. float_of_int !submitted);
              Table.ffloat ~dec:1 (Metrics.messages_per_commit m);
            ])
        [ 0; 1; 2; 4 ];
      Table.add_sep t)
    [ 0.2; 0.4; 0.6 ];
  Table.print t

(* ---------------------------------------------------------------- E17 *)

(* Where does commit latency go?  The aggregate metrics give end-to-end
   percentiles; the span analyzer (lib/obs) decomposes each transaction's
   life into lock wait and remote-request wait, and each virtual message's
   life into delivery delay and retransmissions.  Lossy links should leave
   the lock wait untouched but stretch the request wait and the Vm
   delivery tail — value gathering, not local concurrency control, is the
   latency surface that degrades. *)
let e17 () =
  section "E17  Span-derived latency decomposition (trace analyzer)";
  let duration = 15.0 in
  let spec =
    {
      Spec.default with
      Spec.label = "e17";
      Spec.n_sites = 4;
      Spec.items = List.init 4 (fun i -> (i, 1200));
      Spec.arrival_rate = 60.0;
      Spec.duration = duration;
      Spec.seed = 171;
    }
  in
  let t =
    Table.create
      ~title:
        "per-span latency breakdown, 4 sites, 60 txn/s — aggregates from \
         reconstructed transaction spans and Vm lifecycles"
      [
        ("links", Table.Left);
        ("txns", Table.Right);
        ("lock-wait ms", Table.Right);
        ("req-wait ms", Table.Right);
        ("vm p90 ms", Table.Right);
        ("retrans/vm", Table.Right);
        ("in flight", Table.Right);
        ("unfinished", Table.Right);
      ]
  in
  let sample = Dvp.Util.Dstats.Sample.percentile in
  List.iter
    (fun (label, link) ->
      let trace = Dvp.Trace.create ~capacity:262_144 () in
      (* Concentrated quotas force value gathering: most of each item's
         quota sits at its home site, so transactions elsewhere must pull
         virtual messages — otherwise there would be no Vm spans to
         decompose. *)
      let sys =
        skewed_dvp_system ?link ~trace ~seed:spec.Spec.seed ~n:spec.Spec.n_sites
          ~items:spec.Spec.items
          ~home:(fun i -> i mod spec.Spec.n_sites)
          ~keep:15 ()
      in
      let driver = Dvp.Driver.of_dvp ~name:("dvp-" ^ label) sys in
      let o = Runner.run driver spec () in
      let spans = Dvp.Obs.Spans.of_trace trace in
      let lock = Dvp.Obs.Spans.lock_wait_stats spans in
      let req = Dvp.Obs.Spans.request_wait_stats spans in
      let deliver = Dvp.Obs.Spans.delivery_stats spans in
      let retrans = Dvp.Obs.Spans.retransmit_stats spans in
      let ms v = if Float.is_finite v then Printf.sprintf "%.2f" (1000.0 *. v) else "-" in
      Report.record o
        ~extra:
          [
            ("links", Json.String label);
            ("spans", Dvp.Obs.Spans.to_json ~lifecycles:false spans);
          ];
      Table.add_row t
        [
          label;
          Table.fint (List.length spans.Dvp.Obs.Spans.txns);
          ms (Dvp.Util.Dstats.Sample.mean lock);
          ms (Dvp.Util.Dstats.Sample.mean req);
          ms (sample deliver 90.0);
          Table.ffloat ~dec:2 (Dvp.Util.Dstats.Sample.mean retrans);
          Table.fint (Dvp.Obs.Spans.vm_in_flight spans);
          Table.fint (Dvp.Obs.Spans.unfinished_count spans);
        ])
    [
      ("clean", None);
      ("slow", Some { Dvp.Net.Linkstate.default with Dvp.Net.Linkstate.delay_mean = 0.02 });
      ("lossy", Some (Dvp.Net.Linkstate.lossy 0.10));
    ];
  Table.print t;
  print_endline
    "(same decomposition available offline: dvp-cli run --trace-out t.jsonl && dvp-cli \
     analyze t.jsonl)"

(* ----------------------------------------------------------------- E18 *)

(* Claim (Section 4.2): "a single real message may carry several virtual
   messages" and every message carries a piggybacked cumulative ack — so the
   real-message bill of redistribution should scale with the number of
   retransmission rounds, not the number of outstanding Vms.  This experiment
   measures the batched transport (the default) against the same engine with
   batching and backoff disabled, and against the 2PC baseline, as loss and a
   partition window make retransmission rounds frequent and let outstanding
   Vms pile up per destination.  Concentrated quotas (as in E17) force value
   gathering so there is real Vm traffic to coalesce. *)
let e18 () =
  section "E18  Batched Vm transport and backoff vs site count and loss";
  let duration = 12.0 in
  let t =
    Table.create
      ~title:
        "throughput and real-message count, skewed quotas, 80 txn/s — \
         batched+backoff vs unbatched vs 2PC"
      [
        ("sites", Table.Right);
        ("faults", Table.Left);
        ("system", Table.Left);
        ("txn/s", Table.Right);
        ("avail", Table.Right);
        ("messages", Table.Right);
        ("msgs/commit", Table.Right);
        ("retrans", Table.Right);
      ]
  in
  (* Proactive redistribution keeps creating Vms whether or not the
     destination answers — exactly the sender that piles up outstanding
     fragments when links degrade.  Both DvP variants run it; they differ
     only in the transport knobs. *)
  let batched =
    {
      Dvp.Config.default with
      Dvp.Config.proactive =
        (* A long asker memory keeps the daemon shipping through whole
           closed windows instead of fading out after two seconds. *)
        Some { Dvp.Config.default_proactive with Dvp.Config.asker_window = 5.0 };
    }
  in
  let unbatched =
    (* The pre-batching transport: one real message per outstanding fragment
       per scan, fixed retransmission period. *)
    { batched with
      Dvp.Config.transport = Dvp.Config.Transport.v ~vm_batch:false ~vm_backoff_mult:1.0 ()
    }
  in
  List.iter
    (fun n ->
      List.iter
        (fun (scenario, loss, partitioned) ->
          let spec =
            {
              Spec.default with
              Spec.label = "e18";
              Spec.n_sites = n;
              Spec.items = List.init n (fun i -> (i, 3000));
              Spec.arrival_rate = 80.0;
              Spec.duration;
              Spec.seed = 181;
            }
          in
          let link = if loss > 0.0 then Some (Dvp.Net.Linkstate.lossy loss) else None in
          let faults =
            if partitioned then
              (* Flapping connectivity: grants slip through the 0.5 s open
                 gaps, then the next closed window catches their Vms (and
                 acks) mid-flight — outstanding piles up per destination and
                 the retransmission scans fire into the void.  This is the
                 storm batching and backoff exist to tame. *)
              let half = List.init (n / 2) (fun i -> i) in
              let rest = List.init (n - (n / 2)) (fun i -> (n / 2) + i) in
              Faultplan.repeated_partitions ~period:1.5 ~len:1.0 ~until:duration
                [ half; rest ]
            else Faultplan.empty
          in
          let record name (o : Runner.outcome) =
            Report.record o
              ~extra:
                [
                  ("sites", Json.Int n);
                  ("scenario", Json.String scenario);
                  ("loss", Json.Float loss);
                  ("system", Json.String name);
                ];
            Table.add_row t
              [
                Table.fint n;
                scenario;
                name;
                Table.ffloat ~dec:1 o.Runner.throughput;
                Table.fpct o.Runner.availability;
                Table.fint (Metrics.messages o.Runner.metrics);
                Table.ffloat ~dec:1 (Metrics.messages_per_commit o.Runner.metrics);
                Table.fint (Metrics.vm_retransmissions o.Runner.metrics);
              ]
          in
          let run_dvp name config =
            let sys =
              skewed_dvp_system ~config ?link ~seed:spec.Spec.seed ~n ~items:spec.Spec.items
                ~home:(fun i -> i mod n)
                ~keep:5 ()
            in
            record name (Runner.run (Dvp.Driver.of_dvp ~name sys) spec ~faults ())
          in
          run_dvp "dvp-batched" batched;
          run_dvp "dvp-unbatched" unbatched;
          record "2pc" (Runner.run (Setup.trad ?link ~name:"2pc" spec) spec ~faults ());
          Table.add_sep t)
        [
          ("clean", 0.0, false);
          ("loss 30%", 0.3, false);
          ("loss 60%", 0.6, false);
          ("flapping", 0.0, true);
        ])
    [ 4; 8 ];
  Table.print t;
  print_endline
    "Batching coalesces each retransmission round into one real message per\n\
     destination, and backoff stretches the rounds out while a destination\n\
     stays silent — the message bill under sustained loss or partition drops\n\
     by multiples while availability holds.  scripts/perf_gate.sh regresses\n\
     against this table."

(* ----------------------------------------------------------------- E19 *)

(* Claim (degraded-mode operation): when one of n sites dies permanently,
   the failure detector + circuit breakers + evacuation restore the
   survivors' throughput to within ~10% of the no-fault baseline once the
   dead site is condemned — while without detection, every shortfall
   transaction keeps splitting its asks across the dead peer, waits for a
   share that never arrives, and times out.  Quotas are concentrated (as in
   E17/E18) so most transactions must gather value; the "oracle" row
   condemns the victim at the instant of death (zero detection latency), the
   upper bound the real detector should approach. *)
let e19 () =
  section "E19  Degraded-mode availability with one site dead forever";
  let n = 6 in
  let duration = 20.0 in
  let kill_at = 3.0 in
  let victim = n - 1 in
  (* Late window: past the detector's condemnation horizon (kill at 3 s +
     condemn_after 4 s), with margin for parked backlogs to drain. *)
  let late_from = 10.0 in
  let spec =
    {
      Spec.default with
      Spec.label = "e19";
      Spec.n_sites = n;
      Spec.items = List.init n (fun i -> (i, 3000));
      Spec.arrival_rate = 80.0;
      (* Drain reads must hear from every fragment holder (Section 5), so an
         undetected dead site blocks every read in the system — the
         degradation detection exists to stop. *)
      Spec.read_fraction = 0.1;
      Spec.duration;
      Spec.seed = 191;
    }
  in
  let late_throughput (o : Runner.outcome) =
    let from_bucket = int_of_float (late_from /. o.Runner.timeline_bucket) in
    let committed = ref 0 in
    Array.iteri
      (fun i c -> if i >= from_bucket then committed := !committed + c)
      o.Runner.bucket_committed;
    float_of_int !committed /. (duration -. late_from)
  in
  (* Single-target asks make detection decisive: each shortfall asks one
     random peer for the whole amount, so a 1-in-5 draw of the dead site is a
     guaranteed timeout — unless the detector has removed it from the
     candidate set.  (Under the default Ask_all_split, the four healthy
     shares usually cover a small shortfall by themselves and the dead peer's
     silence costs nothing.) *)
  let base_config =
    {
      Dvp.Config.default with
      Dvp.Config.request_policy = Dvp.Config.Ask_one_random;
      (* Drain reads concentrate an item at the reader; the proactive daemon
         spreads it back out (and, at a dead site, is exactly the Vm source
         the circuit breaker must bound). *)
      Dvp.Config.proactive =
        Some { Dvp.Config.default_proactive with Dvp.Config.asker_window = 5.0 };
    }
  in
  let detector_config =
    {
      base_config with
      Dvp.Config.health = Some Dvp.Health.default_config;
      Dvp.Config.auto_evacuate = true;
    }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "6 sites, site %d killed at t=%.0fs, 80 txn/s — late window is t \
            in [%.0f, %.0f)"
           victim kill_at late_from duration)
      [
        ("scenario", Table.Left);
        ("avail", Table.Right);
        ("txn/s", Table.Right);
        ("late txn/s", Table.Right);
        ("vs no-fault", Table.Right);
        ("vs share", Table.Right);
        ("aborts", Table.Right);
      ]
  in
  let healthy_late = ref nan in
  let row scenario ~config ~kill ~instant_condemn () =
    let sys = Setup.dvp_system ~config spec in
    let faults =
      if kill then [ Faultplan.at kill_at (Faultplan.Kill_forever victim) ]
      else Faultplan.empty
    in
    if instant_condemn then
      (* The clairvoyant comparator: every survivor condemns the victim the
         moment it dies, so breaker + evacuation latency is all that's left. *)
      ignore
        (Engine.schedule_at (Dvp.System.engine sys) ~at:(kill_at +. 1e-3) (fun () ->
             for p = 0 to n - 1 do
               if p <> victim then
                 match Dvp.System.detector sys p with
                 | Some det -> Dvp.Health.condemn det ~peer:victim
                 | None -> ()
             done));
    let o = Runner.run (Dvp.Driver.of_dvp ~name:scenario sys) spec ~faults () in
    let late = late_throughput o in
    if not kill then healthy_late := late;
    let vs = late /. !healthy_late in
    (* The survivors' fair share of the no-fault rate: 1/6 of submissions
       still target the dead site and can never commit, so (n-1)/n of the
       baseline is what perfect degraded-mode operation restores. *)
    let share =
      if kill then vs *. float_of_int n /. float_of_int (n - 1) else 1.0
    in
    Report.record o
      ~extra:
        [
          ("scenario", Json.String scenario);
          ("system", Json.String scenario);
          ("sites", Json.Int n);
          ("late_throughput", Json.Float late);
          ("late_vs_healthy", Json.Float vs);
          ("late_vs_share", Json.Float share);
        ];
    Table.add_row t
      [
        scenario;
        Table.fpct o.Runner.availability;
        Table.ffloat ~dec:1 o.Runner.throughput;
        Table.ffloat ~dec:1 late;
        Table.fpct vs;
        Table.fpct share;
        Table.fint o.Runner.aborted;
      ]
  in
  row "no-fault" ~config:base_config ~kill:false ~instant_condemn:false ();
  row "kill, detector off" ~config:base_config ~kill:true ~instant_condemn:false ();
  row "kill, detector on" ~config:detector_config ~kill:true ~instant_condemn:false ();
  row "kill, oracle-instant" ~config:detector_config ~kill:true ~instant_condemn:true ();
  Table.print t;
  print_endline
    "An undetected dead site blocks every drain read in the system and eats\n\
     one in five single-target asks; the detector condemns it within the\n\
     suspicion horizon, re-routes asks and reads to the survivors, and\n\
     evacuates its quota — restoring the survivors' full pro-rata throughput\n\
     (vs share >= 100%), while detector-off stays degraded for the rest of\n\
     the run.  The oracle-instant row bounds what zero detection latency\n\
     would buy.  scripts/perf_gate.sh regresses against this table."

(* ----------------------------------------------------------- E21-elastic *)

(* Claim (elastic membership): the membership subsystem pays for itself in
   throughput.  With an item's quota concentrated on one hot site and
   single-target asks, most transactions at the cold sites must win a
   1-in-3 draw of the hot peer to gather value — auto-rebalancing pours the
   hot site's excess out through ordinary push_value Vm and restores
   near-balanced throughput.  Join and leave rows exercise the epoch-fenced
   transitions under load: a spare seeded mid-run serves like any member,
   and a graceful leave sheds its quota onto the survivors — value
   conservation holding across every epoch bump. *)
let e21_elastic () =
  section "E21_elastic  Elastic membership: join, leave, and auto-rebalance";
  let n = 4 in
  let duration = 16.0 in
  let early_until = 4.0 in
  let late_from = 8.0 in
  let spec =
    {
      Spec.default with
      Spec.label = "e21";
      Spec.n_sites = n;
      Spec.items = [ (0, 16_000) ];
      Spec.arrival_rate = 100.0;
      (* Decrement-heavy with chunky amounts: a cold site cannot build a
         working fragment out of its own increments, so placement — not
         demand — decides who commits locally. *)
      Spec.incr_fraction = 0.3;
      Spec.op_min = 2;
      Spec.op_max = 8;
      Spec.duration;
      Spec.seed = 211;
    }
  in
  let window_throughput ~from ~until (o : Runner.outcome) =
    let committed = ref 0 in
    Array.iteri
      (fun i c ->
        let t = float_of_int i *. o.Runner.timeline_bucket in
        if t >= from && t < until then committed := !committed + c)
      o.Runner.bucket_committed;
    float_of_int !committed /. (until -. from)
  in
  (* Single-target asks make placement decisive (as in E19): a cold site's
     shortfall asks one random peer for the whole amount, so only a draw of
     the hot site can cover it. *)
  let base_config =
    { Dvp.Config.default with Dvp.Config.request_policy = Dvp.Config.Ask_one_random }
  in
  let rebalance_config =
    { base_config with Dvp.Config.rebalance = Some Dvp.Config.default_rebalance }
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "4 sites, 100 txn/s, item quota all on site 0 in the skewed rows — \
            early window t in [0, %.0f), late t in [%.0f, %.0f)"
           early_until late_from duration)
      [
        ("scenario", Table.Left);
        ("avail", Table.Right);
        ("txn/s", Table.Right);
        ("early txn/s", Table.Right);
        ("late txn/s", Table.Right);
        ("epoch", Table.Right);
        ("members", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  let row scenario ~sys ~faults () =
    let o = Runner.run (Dvp.Driver.of_dvp ~name:scenario sys) spec ~faults () in
    let early = window_throughput ~from:0.0 ~until:early_until o in
    let late = window_throughput ~from:late_from ~until:duration o in
    let conserved = Dvp.System.conserved_all sys in
    let members = List.length (Dvp.System.members sys) in
    Report.record o
      ~extra:
        [
          ("scenario", Json.String scenario);
          ("system", Json.String scenario);
          ("early_throughput", Json.Float early);
          ("late_throughput", Json.Float late);
          ("end_conserved", Json.Bool conserved);
          ("epoch", Json.Int (Dvp.System.epoch sys));
          ("members", Json.Int members);
        ];
    Table.add_row t
      [
        scenario;
        Table.fpct o.Runner.availability;
        Table.ffloat ~dec:1 o.Runner.throughput;
        Table.ffloat ~dec:1 early;
        Table.ffloat ~dec:1 late;
        Table.fint (Dvp.System.epoch sys);
        Table.fint members;
        (if conserved then "yes" else "NO");
      ]
  in
  let skewed config =
    skewed_dvp_system ~config ~seed:spec.Spec.seed ~n ~items:spec.Spec.items
      ~home:(fun _ -> 0) ~keep:0 ()
  in
  row "balanced" ~sys:(Setup.dvp_system ~config:base_config spec) ~faults:Faultplan.empty ();
  row "skewed" ~sys:(skewed base_config) ~faults:Faultplan.empty ();
  row "skewed, rebalanced" ~sys:(skewed rebalance_config) ~faults:Faultplan.empty ();
  row "join mid-run"
    ~sys:(Setup.dvp_system ~config:base_config ~capacity:(n + 1) spec)
    ~faults:[ Faultplan.at 4.0 (Faultplan.Join n) ]
    ();
  row "leave mid-run"
    ~sys:(Setup.dvp_system ~config:base_config spec)
    ~faults:[ Faultplan.at 4.0 (Faultplan.Leave (n - 1)) ]
    ();
  Table.print t;
  print_endline
    "The skewed row stays starved for the whole run: a cold site's\n\
     decrement commits only when its single-target ask happens to draw the\n\
     hot peer, and the decrement-heavy demand never lets local increments\n\
     build a working fragment.  Auto-rebalancing pours the hot site's\n\
     excess out within its first pass and the late window matches the\n\
     balanced rate.  The join row bumps the epoch and ends with 5 members;\n\
     the leave row sheds the leaver's quota (aborting only its own late\n\
     arrivals) and ends with 3 — conservation holds in every row.\n\
     scripts/perf_gate.sh regresses against this table."

(* -------------------------------------------------------------- CHAOS *)

(* Claim (Section 7 + the non-blocking property, end to end): under seeded
   storms of crashes, partitions, link loss, checkpoint jitter, and torn or
   corrupted log flushes, every invariant the paper promises still holds —
   conservation after each recovery, escrow non-negativity, exactly-once Vm
   acceptance, and a clean log tail.  One row per profile, many seeds each;
   any violation would abort the table with its reproducing seed. *)
let chaos () =
  (* The id is lowercase "chaos", which the `section` helper's
     leading-token parse can't produce from a title — begin the report
     section directly. *)
  let title = "CHAOS  Invariants under seeded fault storms" in
  Report.begin_section ~id:"chaos" ~title;
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  let t =
    Table.create
      [
        ("profile", Table.Left);
        ("seeds", Table.Right);
        ("violations", Table.Right);
        ("avail", Table.Right);
        ("recoveries", Table.Right);
        ("wal repairs", Table.Right);
        ("records truncated", Table.Right);
      ]
  in
  List.iter
    (fun (profile, seeds) ->
      let r = Dvp.Chaos.Harness.run ~seeds ~profile () in
      Report.record_json (Dvp.Chaos.Harness.report_to_json r);
      Table.add_row t
        [
          profile.Dvp.Chaos.Profile.label;
          Table.fint seeds;
          Table.fint (List.length r.Dvp.Chaos.Harness.failures);
          Table.fpct
            (float_of_int r.Dvp.Chaos.Harness.total_committed
            /. float_of_int (max 1 r.Dvp.Chaos.Harness.total_submitted));
          Table.fint r.Dvp.Chaos.Harness.total_recoveries;
          Table.fint r.Dvp.Chaos.Harness.total_wal_repairs;
          Table.fint r.Dvp.Chaos.Harness.total_repaired_records;
        ];
      List.iter
        (fun (f : Dvp.Chaos.Harness.failure) ->
          Printf.printf "  FAILED seed %d (%d violation(s)); reproduce with\n"
            f.Dvp.Chaos.Harness.result.Dvp.Chaos.Harness.seed
            (List.length f.Dvp.Chaos.Harness.result.Dvp.Chaos.Harness.violations);
          Printf.printf "    dvp-cli chaos --profile %s --seed %d --seeds 1\n"
            profile.Dvp.Chaos.Profile.label
            f.Dvp.Chaos.Harness.result.Dvp.Chaos.Harness.seed)
        r.Dvp.Chaos.Harness.failures)
    [ (Dvp.Chaos.Profile.bounded, 40); (Dvp.Chaos.Profile.default, 15) ];
  Table.print t


(* ----------------------------------------------------------- E20-wall *)

(* The multicore runtime's tentpole claim: the same Site code, run one
   domain per site on the wall clock, scales with real cores.  Escrow
   increments commit locally and synchronously, so the closed loop has zero
   cross-site traffic — any shortfall from linear is runtime overhead, not
   protocol cost.  On hosts with fewer cores than domains the extra domains
   time-slice; the perf gate only enforces the speedup contract when enough
   cores exist. *)
let e20_wall () =
  section "E20_wall  Wall-clock scaling of the domains runtime";
  let cores = Domain.recommended_domain_count () in
  let duration = 1.0 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "escrow-increment closed loop, %.1f s wall each (%d core(s))"
           duration cores)
      [
        ("domains", Table.Right);
        ("committed/s", Table.Right);
        ("speedup vs 1", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  let base = ref 0.0 in
  List.iter
    (fun domains ->
      let c = Dvp.Cluster.create ~seed:42 ~n:domains ~items:[ (0, 1_000_000) ] () in
      let committed = Dvp.Cluster.run_load c ~duration ~item:0 () in
      let quiesced = Dvp.Cluster.quiesce c in
      let conserved = quiesced && Dvp.Cluster.conserved_all c in
      Dvp.Cluster.stop c;
      let rate = float_of_int committed /. duration in
      if domains = 1 then base := rate;
      let speedup = if !base > 0.0 then rate /. !base else 1.0 in
      Report.record_json
        (Json.Obj
           [
             ("domains", Json.Int domains);
             ("cores", Json.Int cores);
             ("duration", Json.Float duration);
             ("committed", Json.Int committed);
             ("throughput", Json.Float rate);
             ("speedup_vs_1", Json.Float speedup);
             ("conserved", Json.Bool conserved);
           ]);
      Table.add_row t
        [
          Table.fint domains;
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2fx" speedup;
          (if conserved then "yes" else "NO");
        ])
    [ 1; 2; 4; 8 ];
  (* The gate's contract, recorded next to the data: with >= 4 real cores,
     4 domains must beat 1 domain by this factor. *)
  Report.record_json
    (Json.Obj [ ("contract", Json.Obj [ ("min_speedup_4v1", Json.Float 1.5) ]) ]);
  Table.print t

(* ----------------------------------------------------------- E22-trace *)

(* The observability plane's cost contract: per-domain trace shards are
   single-writer bounded rings — no cross-domain locking on the hot path —
   so tracing on must cost < 5% committed/s against tracing off at 4
   domains.  Wall rates are noisy (worse when domains time-slice few
   cores), so each mode keeps the best of three trials; the perf gate only
   enforces the overhead contract on hosts with >= 2 real cores, and always
   enforces conservation and (with tracing) span/Metrics agreement. *)
let e22_trace () =
  section "E22_trace  Tracing overhead on the domains runtime";
  let cores = Domain.recommended_domain_count () in
  let domains = 4 and duration = 1.0 and trials = 3 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "escrow-increment closed loop at %d domains, best of %d x %.1f s (%d core(s))"
           domains trials duration cores)
      [
        ("tracing", Table.Left);
        ("committed/s", Table.Right);
        ("trace events", Table.Right);
        ("spans=metrics", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  let run_mode ~tracing =
    let best_rate = ref 0.0 and best_committed = ref 0 in
    let conserved = ref true and events = ref 0 and spans_agree = ref true in
    for _ = 1 to trials do
      let c =
        Dvp.Cluster.create ~seed:42 ~tracing ~trace_capacity:(1 lsl 21) ~n:domains
          ~items:[ (0, 1_000_000) ] ()
      in
      let committed = Dvp.Cluster.run_load c ~duration ~item:0 () in
      let quiesced = Dvp.Cluster.quiesce c in
      if not (quiesced && Dvp.Cluster.conserved_all c) then conserved := false;
      if tracing then begin
        (* The merged shard stream must reconstruct to exactly the commits
           Metrics counted — completeness, not just speed. *)
        let stats = Dvp.Cluster.stats c in
        let metrics_committed =
          Array.fold_left
            (fun acc st -> acc + Dvp.Metrics.committed st.Dvp.Cluster.st_metrics)
            0 stats
        in
        match Dvp.Cluster.trace_jsonl c with
        | Some jsonl ->
          let spans = Dvp.Obs.Spans.of_jsonl jsonl in
          events := spans.Dvp.Obs.Spans.events;
          if
            (not spans.Dvp.Obs.Spans.complete)
            || Dvp.Obs.Spans.committed_count spans <> metrics_committed
          then spans_agree := false
        | None -> spans_agree := false
      end;
      Dvp.Cluster.stop c;
      let rate = float_of_int committed /. duration in
      if rate > !best_rate then begin
        best_rate := rate;
        best_committed := committed
      end
    done;
    Report.record_json
      (Json.Obj
         [
           ("mode", Json.String (if tracing then "on" else "off"));
           ("domains", Json.Int domains);
           ("cores", Json.Int cores);
           ("duration", Json.Float duration);
           ("trials", Json.Int trials);
           ("committed", Json.Int !best_committed);
           ("throughput", Json.Float !best_rate);
           ("trace_events", Json.Int !events);
           ("spans_match_metrics", Json.Bool !spans_agree);
           ("conserved", Json.Bool !conserved);
         ]);
    Table.add_row t
      [
        (if tracing then "on" else "off");
        Printf.sprintf "%.0f" !best_rate;
        (if tracing then string_of_int !events else "-");
        (if tracing then if !spans_agree then "yes" else "NO" else "-");
        (if !conserved then "yes" else "NO");
      ];
    !best_rate
  in
  let off = run_mode ~tracing:false in
  let on = run_mode ~tracing:true in
  let overhead_pct = if off > 0.0 then (off -. on) /. off *. 100.0 else 0.0 in
  Report.record_json
    (Json.Obj
       [
         ("overhead_pct", Json.Float overhead_pct);
         ("contract", Json.Obj [ ("max_overhead_pct", Json.Float 5.0) ]);
       ]);
  Table.print t;
  Printf.printf "tracing overhead: %.1f%% (contract < 5%% on >= 2-core hosts)\n"
    overhead_pct

(* ----------------------------------------------------------- E23-scale *)

(* Peak resident set in kB from the kernel's high-water mark, falling back
   to the GC's top heap size where /proc is unavailable.  VmHWM is
   process-wide and monotone, so the scale curve runs its rows in ascending
   site order — each row's reading excludes only the larger rows after it. *)
let peak_rss_kb () =
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
        match Scanf.sscanf_opt line "VmHWM: %d kB" (fun k -> k) with
        | Some k -> Some k
        | None -> scan ())
    in
    let r = scan () in
    close_in ic;
    r
  in
  match (try from_proc () with _ -> None) with
  | Some k -> k
  | None -> Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8) / 1024

(* One point of the sites x load curve: every [dt] simulated seconds each
   site submits one transaction — a local increment, except every 16th which
   is an explicit push_value to the ring neighbour (so the Vm send / ack /
   retransmission machinery carries a steady fraction of the load).  The run
   gets a settle window after the arrival loop stops so in-flight Vm drain
   before the conservation check. *)
let e23_row ~sites ~duration () =
  let seed = 4242 and dt = 0.002 and items = 4 and settle = 1.0 in
  let sys = Dvp.System.create ~seed ~n:sites () in
  for item = 0 to items - 1 do
    Dvp.System.add_item sys ~item ~total:(sites * 200) ()
  done;
  Dvp.System.start_periodic_checkpoints sys ~every:0.5;
  let sub = Dvp.System.sub sys in
  let submitted = ref 0 and committed = ref 0 and aborted = ref 0 in
  for site = 0 to sites - 1 do
    let item = site mod items in
    let dst = (site + 1) mod sites in
    let st = Dvp.System.site sys site in
    let k = ref 0 in
    let rec drive () =
      incr k;
      incr submitted;
      if !k mod 16 = 0 then begin
        if Dvp.Site.push_value st ~dst ~item ~amount:1 then incr committed
        else incr aborted
      end
      else
        Dvp.System.exec sys
          (Dvp.Txn.write ~site [ (item, Dvp.Op.Incr 1) ])
          ~on_done:(fun o ->
            if Dvp.Txn.committed o then incr committed else incr aborted);
      if Dvp.Substrate.now sub +. dt < duration then
        ignore (Dvp.Substrate.schedule sub ~delay:dt drive)
    in
    ignore
      (Dvp.Substrate.schedule sub
         ~delay:(dt *. float_of_int site /. float_of_int sites)
         drive)
  done;
  let t0 = Unix.gettimeofday () in
  Dvp.System.run_until sys (duration +. settle);
  let wall = Unix.gettimeofday () -. t0 in
  let events = Dvp.Engine.events (Dvp.System.engine sys) in
  let conserved = Dvp.System.conserved_all sys in
  (!submitted, !committed, !aborted, events, wall, peak_rss_kb (), conserved)

(* Claim (this repo's tentpole, not the paper's): with a timer-wheel event
   core, activity-driven daemons and flattened hot state, the DES sustains
   a 1024-site installation pushing > 10^6 committed transactions in
   seconds of wall time — throughput per event roughly flat as sites grow.
   DES-side quantities (submitted/committed/events) are deterministic in
   the seed; wall seconds and RSS are host-dependent and gated loosely. *)
let e23_scale () =
  section "E23_scale  DES core at scale: sites x load curve";
  let t =
    Table.create
      ~title:
        "closed loop, 1 txn / site / 2 ms sim-time (1 in 16 a ring Vm push), \
         ascending site count"
      [
        ("sites", Table.Right);
        ("sim s", Table.Right);
        ("committed", Table.Right);
        ("committed/s", Table.Right);
        ("events/s", Table.Right);
        ("wall s", Table.Right);
        ("peak RSS MB", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  List.iter
    (fun (sites, duration) ->
      let submitted, committed, aborted, events, wall, rss_kb, conserved =
        e23_row ~sites ~duration ()
      in
      let committed_per_sec = float_of_int committed /. wall in
      let events_per_sec = float_of_int events /. wall in
      Report.record_json
        (Json.Obj
           [
             ("sites", Json.Int sites);
             ("duration", Json.Float duration);
             ("submitted", Json.Int submitted);
             ("committed", Json.Int committed);
             ("aborted", Json.Int aborted);
             ("events", Json.Int events);
             ("wall_s", Json.Float wall);
             ("committed_per_sec", Json.Float committed_per_sec);
             ("events_per_sec", Json.Float events_per_sec);
             ("peak_rss_kb", Json.Int rss_kb);
             ("conserved", Json.Bool conserved);
           ]);
      Table.add_row t
        [
          string_of_int sites;
          Printf.sprintf "%.1f" duration;
          string_of_int committed;
          Printf.sprintf "%.0f" committed_per_sec;
          Printf.sprintf "%.0f" events_per_sec;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" (float_of_int rss_kb /. 1024.0);
          (if conserved then "yes" else "NO");
        ])
    [ (6, 4.0); (64, 3.0); (256, 3.0); (1024, 2.5) ];
  Report.record_json
    (Json.Obj
       [
         ( "contract",
           Json.Obj
             [
               ("min_committed_1024", Json.Int 1_000_000);
               ("gate_sites", Json.Int 256);
             ] );
       ]);
  Table.print t

(* The check.sh smoke point: one mid-size row, pass/fail on liveness and
   conservation only (no wall-clock judgement, no JSON needed). *)
let e23_smoke () =
  section "E23-SMOKE  scale smoke: 64 sites, short horizon";
  let _, committed, _, events, wall, _, conserved =
    e23_row ~sites:64 ~duration:0.5 ()
  in
  Printf.printf "64 sites: %d committed, %d events in %.2f s wall, conserved: %s\n"
    committed events wall
    (if conserved then "yes" else "NO");
  if (not conserved) || committed <= 0 then begin
    print_endline "E23-SMOKE FAILED";
    exit 1
  end;
  print_endline "E23-SMOKE ok"

(* ----------------------------------------------------------- E24-wallchaos *)

(* The crash-restart claim, measured: hard-kill one of four site domains
   mid-traffic (its on-disk WAL tail torn, so the respawn runs the repair
   path too), bring it back through file replay + crash recovery, and time
   it.  "revive ms" is the full wall cost of the synchronous respawn — read
   the frame prefix, truncate the torn tail, replay into the database and Vm
   state, rejoin the membership; "post commits/s" shows the background load
   re-absorbing the recovered site.  Value must conserve at quiesce in every
   trial; rates are host-dependent and only gated on multi-core hosts. *)
let e24_wallchaos () =
  section "E24_wallchaos  Crash-restart recovery on the domains runtime";
  let cores = Domain.recommended_domain_count () in
  let duration = 3.0 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "kill 1 of 4 domains at 0.8 s, torn WAL tail, revive at 1.2 s (%d core(s))"
           cores)
      [
        ("seed", Table.Right);
        ("pre commits/s", Table.Right);
        ("replayed", Table.Right);
        ("revive ms", Table.Right);
        ("post commits/s", Table.Right);
        ("conserved", Table.Right);
      ]
  in
  List.iter
    (fun seed ->
      let wal_dir =
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "dvp-e24-%d-%d" (Unix.getpid ()) seed)
        in
        Unix.mkdir dir 0o700;
        dir
      in
      let c = Dvp.Cluster.create ~seed ~wal_dir ~n:4 ~items:[ (0, 200_000) ] () in
      let sup = Dvp.Supervisor.create c in
      let t0 = Unix.gettimeofday () in
      Dvp.Cluster.start_bg_load c ~duration ();
      Unix.sleepf 0.8;
      let pre_committed = Dvp.Cluster.bg_committed c in
      let pre_rate = float_of_int pre_committed /. (Unix.gettimeofday () -. t0) in
      ignore (Dvp.Supervisor.kill sup 1);
      (match Dvp.Cluster.wal_path c 1 with
      | Some path -> Dvp.Walfile.tear path ~junk:64
      | None -> ());
      Unix.sleepf 0.4;
      let r0 = Unix.gettimeofday () in
      let replayed =
        match Dvp.Supervisor.revive sup 1 with Some n -> n | None -> 0
      in
      let revive_ms = (Unix.gettimeofday () -. r0) *. 1000.0 in
      (* Post-recovery throughput over the rest of the load window. *)
      let post_t0 = Unix.gettimeofday () in
      let post_base = Dvp.Cluster.bg_committed c in
      let post_window = Float.max 0.3 (t0 +. duration -. post_t0 -. 0.1) in
      Unix.sleepf post_window;
      let post_rate =
        float_of_int (Dvp.Cluster.bg_committed c - post_base)
        /. (Unix.gettimeofday () -. post_t0)
      in
      let remain = t0 +. duration -. Unix.gettimeofday () in
      if remain > 0.0 then Unix.sleepf remain;
      let quiesced = Dvp.Cluster.quiesce ~timeout:30.0 c in
      let conserved = quiesced && Dvp.Cluster.conserved_all c in
      let committed = Dvp.Cluster.bg_committed c in
      Dvp.Cluster.stop c;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat wal_dir f) with _ -> ())
        (Sys.readdir wal_dir);
      (try Unix.rmdir wal_dir with _ -> ());
      Report.record_json
        (Json.Obj
           [
             ("seed", Json.Int seed);
             ("cores", Json.Int cores);
             ("duration", Json.Float duration);
             ("committed", Json.Int committed);
             ("pre_rate", Json.Float pre_rate);
             ("replayed", Json.Int replayed);
             ("torn_tail", Json.Bool true);
             ("revive_ms", Json.Float revive_ms);
             ("post_rate", Json.Float post_rate);
             ("conserved", Json.Bool conserved);
           ]);
      Table.add_row t
        [
          Table.fint seed;
          Printf.sprintf "%.0f" pre_rate;
          Table.fint replayed;
          Printf.sprintf "%.1f" revive_ms;
          Printf.sprintf "%.0f" post_rate;
          (if conserved then "yes" else "NO");
        ])
    [ 42; 43 ];
  (* The gate's contract: recovery must replay and conserve everywhere;
     on >= 2 real cores the respawn must also be fast and the load must
     re-absorb the site. *)
  Report.record_json
    (Json.Obj
       [
         ( "contract",
           Json.Obj
             [
               ("max_revive_ms", Json.Float 1500.0);
               ("min_post_frac", Json.Float 0.4);
             ] );
       ]);
  Table.print t

let all = [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
            ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10);
            ("E11", e11); ("E12", e12); ("E13", e13); ("E14", e14);
            ("E15", e15); ("E16", e16); ("E17", e17); ("E18", e18); ("E19", e19);
            ("E20-WALL", e20_wall); ("E21-ELASTIC", e21_elastic);
            ("E22-TRACE", e22_trace); ("E23-SCALE", e23_scale);
            ("E23-SMOKE", e23_smoke); ("E24-WALLCHAOS", e24_wallchaos);
            ("CHAOS", chaos) ]
