(** Collects {!Dvp.Runner.outcome}s per experiment and writes one
    [BENCH_<id>.json] file per experiment.  Inactive (all calls no-ops)
    until {!enable} is called, so plain table runs pay nothing. *)

val enable : ?dir:string -> unit -> unit
(** Turn collection on; files go to [dir] (default the working directory). *)

val is_enabled : unit -> bool

val begin_section : id:string -> title:string -> unit
(** Start a new experiment group.  Subsequent {!record}s attach to it. *)

val record : ?extra:(string * Dvp.Util.Json.t) list -> Dvp.Runner.outcome -> unit
(** Append one run to the current experiment; [extra] fields (sweep
    parameters such as partition fraction or offered load) are prepended to
    the outcome's JSON object. *)

val record_json : Dvp.Util.Json.t -> unit
(** Append an arbitrary JSON object as one run — for experiments whose
    natural unit is not a {!Dvp.Runner.outcome} (the chaos
    experiment records a whole fuzzing report). *)

val flush : unit -> unit
(** Write every collected experiment out and reset the collector. *)
